//! The simulated universe: fabric + filesystems + daemons + naming.
//!
//! A [`Runtime`] is what a physical cluster plus its shared filesystem is
//! to real Open MPI: the environment jobs are launched into. It owns
//!
//! * the netsim [`Fabric`] all traffic runs over,
//! * a **base directory** on the host filesystem, carved into per-node
//!   scratch directories (`nodes/node00/...` — "local disk") and a shared
//!   `stable/` directory (the RAID/NFS stable storage of paper §5.2),
//! * the per-node daemons, created on demand, and
//! * the [`Modex`] rendezvous store and job-id allocation.
//!
//! Nothing here knows about checkpoint *contents*: the write-behind drain
//! and the per-node scratch trees move whatever SNAPC committed, so with
//! incremental checkpointing enabled the drained interval directories
//! hold small delta contexts and stable storage grows by the delta size,
//! not the full image size, per interval.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use netsim::{Fabric, NetView, NodeId, Topology};
use parking_lot::Mutex;

use cr_core::{CrError, JobId, Tracer};

use crate::daemon::Orted;
use crate::modex::Modex;

struct RtInner {
    fabric: Fabric,
    base_dir: PathBuf,
    modex: Modex,
    tracer: Tracer,
    next_job: AtomicU32,
    daemons: Mutex<HashMap<NodeId, Arc<Orted>>>,
    drains: Mutex<Vec<std::thread::JoinHandle<()>>>,
    failed: Mutex<HashSet<NodeId>>,
    /// Spare-node pool for partial restart: nodes held out of placement
    /// at launch (`orte_spare_nodes`) and handed out one at a time when a
    /// failed rank needs a new home.
    spares: Mutex<Vec<NodeId>>,
    /// The durable FT event journal, once enabled: every tracer record is
    /// appended to it through the `TraceSink` bridge.
    journal: Mutex<Option<Arc<journal::JournalSink>>>,
}

/// Cheap-to-clone handle to the simulated cluster environment.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RtInner>,
}

impl Runtime {
    /// Bring up a runtime over `topology`, rooted at `base_dir` on the
    /// host filesystem.
    pub fn new(topology: Topology, base_dir: impl Into<PathBuf>) -> Result<Self, CrError> {
        let base_dir = base_dir.into();
        let stable = base_dir.join("stable");
        std::fs::create_dir_all(&stable)
            .map_err(|e| CrError::io(stable.display().to_string(), &e))?;
        let fabric = Fabric::new(topology);
        for node in fabric.topology().nodes() {
            let dir = base_dir.join("nodes").join(node.to_string());
            std::fs::create_dir_all(&dir)
                .map_err(|e| CrError::io(dir.display().to_string(), &e))?;
        }
        Ok(Runtime {
            inner: Arc::new(RtInner {
                fabric,
                base_dir,
                modex: Modex::new(),
                tracer: Tracer::new(),
                next_job: AtomicU32::new(1),
                daemons: Mutex::new(HashMap::new()),
                drains: Mutex::new(Vec::new()),
                failed: Mutex::new(HashSet::new()),
                spares: Mutex::new(Vec::new()),
                journal: Mutex::new(None),
            }),
        })
    }

    /// The message fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        self.inner.fabric.topology()
    }

    /// Contention-aware pricing view over the fabric: bulk transfers
    /// registered here share link bandwidth with each other and with OOB
    /// traffic.
    pub fn netview(&self) -> NetView<'_> {
        self.inner.fabric.netview()
    }

    /// The rendezvous store.
    pub fn modex(&self) -> &Modex {
        &self.inner.modex
    }

    /// The shared event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Stable storage directory (survives node failures by assumption).
    pub fn stable_dir(&self) -> PathBuf {
        self.inner.base_dir.join("stable")
    }

    /// Node-local scratch directory of `node`.
    pub fn node_dir(&self, node: NodeId) -> PathBuf {
        self.inner.base_dir.join("nodes").join(node.to_string())
    }

    /// Base directory of the whole runtime.
    pub fn base_dir(&self) -> &Path {
        &self.inner.base_dir
    }

    /// Allocate a fresh job id.
    pub fn alloc_job(&self) -> JobId {
        JobId(self.inner.next_job.fetch_add(1, Ordering::Relaxed))
    }

    /// Route every tracer record into a durable hash-chained journal file.
    ///
    /// Idempotent: once a journal is attached, later calls return its path
    /// without reopening (so repeated `launch` calls share one chain).
    /// `dir` defaults to `<base_dir>/journal`; the file inside it is
    /// [`journal::FILE_NAME`]. Reopening an existing file re-verifies the
    /// whole chain and keeps appending after its tail, so the journal
    /// accumulates across restarts of the same runtime directory.
    pub fn enable_journal(
        &self,
        dir: Option<&Path>,
        fsync_every: u64,
    ) -> Result<PathBuf, CrError> {
        let path = {
            let mut slot = self.inner.journal.lock();
            if let Some(sink) = slot.as_ref() {
                return Ok(sink.path().to_path_buf());
            }
            let path = dir
                .map(Path::to_path_buf)
                .unwrap_or_else(|| self.inner.base_dir.join("journal"))
                .join(journal::FILE_NAME);
            let sink = Arc::new(journal::JournalSink::open(&path, fsync_every)?);
            self.inner
                .tracer
                .set_sink(Arc::clone(&sink) as Arc<dyn cr_core::trace::TraceSink>);
            *slot = Some(sink);
            path
        };
        // Recorded after the journal lock is released; the sink is already
        // attached, so this is the first (or first-after-reopen) entry.
        self.inner
            .tracer
            .record("journal.open", &path.display().to_string());
        Ok(path)
    }

    /// Path of the attached journal file, if any.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.inner
            .journal
            .lock()
            .as_ref()
            .map(|s| s.path().to_path_buf())
    }

    /// The attached journal sink, if any (for stats and flushing).
    pub fn journal_sink(&self) -> Option<Arc<journal::JournalSink>> {
        self.inner.journal.lock().as_ref().map(Arc::clone)
    }

    /// The daemon of `node`, starting it if necessary.
    pub fn ensure_daemon(&self, node: NodeId) -> Arc<Orted> {
        self.inner.failed.lock().remove(&node);
        let mut daemons = self.inner.daemons.lock();
        Arc::clone(daemons.entry(node).or_insert_with(|| {
            self.inner.tracer.record("orte.daemon.spawn", &node.to_string());
            Orted::spawn(
                self.inner.fabric.clone(),
                node,
                self.node_dir(node),
                self.inner.tracer.with_actor(&node.to_string()),
            )
        }))
    }

    /// Daemons currently running, node order.
    pub fn daemons(&self) -> Vec<Arc<Orted>> {
        let map = self.inner.daemons.lock();
        let mut v: Vec<(NodeId, Arc<Orted>)> =
            map.iter().map(|(n, d)| (*n, Arc::clone(d))).collect();
        v.sort_by_key(|(n, _)| *n);
        v.into_iter().map(|(_, d)| d).collect()
    }

    /// Kill one node's daemon, simulating node loss: its thread stops and
    /// its in-memory state (including any replica store contents) is gone.
    /// Node-local scratch files are left behind, as a dead node's disk
    /// would be — unreachable until the "node" comes back.
    pub fn kill_daemon(&self, node: NodeId) {
        self.inner.failed.lock().insert(node);
        let daemon = self.inner.daemons.lock().remove(&node);
        if let Some(daemon) = daemon {
            self.inner.tracer.record("orte.daemon.kill", &node.to_string());
            daemon.shutdown();
        }
    }

    /// True when `node` was killed and has not been brought back. In-flight
    /// gathers consult this: a dead node's local scratch is unreachable,
    /// so copies sourced from it must fail rather than silently read the
    /// host filesystem.
    pub fn node_failed(&self, node: NodeId) -> bool {
        self.inner.failed.lock().contains(&node)
    }

    /// Add `node` to the partial-restart spare pool (idempotent). The PLM
    /// holds these nodes out of placement; `claim_spare` hands them back
    /// one at a time when a failed rank needs a new home.
    pub fn register_spare(&self, node: NodeId) {
        let mut spares = self.inner.spares.lock();
        if !spares.contains(&node) {
            spares.push(node);
            self.inner
                .tracer
                .record("orte.spare.register", &node.to_string());
        }
    }

    /// Take one healthy node out of the spare pool, or `None` when the
    /// pool is exhausted (the caller must then fall back to a full
    /// restart). Nodes that failed while parked in the pool are skipped
    /// and dropped.
    pub fn claim_spare(&self) -> Option<NodeId> {
        let mut spares = self.inner.spares.lock();
        while !spares.is_empty() {
            let node = spares.remove(0);
            if self.inner.failed.lock().contains(&node) {
                continue;
            }
            self.inner
                .tracer
                .record("orte.spare.claim", &node.to_string());
            return Some(node);
        }
        None
    }

    /// Current spare-pool membership, pool order.
    pub fn spare_nodes(&self) -> Vec<NodeId> {
        self.inner.spares.lock().clone()
    }

    /// Track a write-behind drain thread (FILEM `replica`'s asynchronous
    /// gather to stable storage). Joined by
    /// [`Runtime::drain_writebehind`] and on [`Runtime::shutdown`].
    pub fn register_drain(&self, handle: std::thread::JoinHandle<()>) {
        self.inner.drains.lock().push(handle);
    }

    /// Wait for every outstanding write-behind drain to reach stable
    /// storage. Restart paths that fall back to disk call this first so
    /// they never race an in-flight gather.
    pub fn drain_writebehind(&self) {
        let drains: Vec<std::thread::JoinHandle<()>> =
            self.inner.drains.lock().drain(..).collect();
        for handle in drains {
            let _ = handle.join();
        }
    }

    /// Stop all daemons (idempotent; also invoked by tests for hygiene).
    ///
    /// Write-behind drains are joined first: stable storage is fully
    /// populated before the runtime disappears, so a fresh host process
    /// can always restart from disk.
    pub fn shutdown(&self) {
        self.drain_writebehind();
        let daemons: Vec<Arc<Orted>> = {
            let mut map = self.inner.daemons.lock();
            map.drain().map(|(_, d)| d).collect()
        };
        for daemon in daemons {
            daemon.shutdown();
        }
        // Journal stays attached (restart may keep recording) but what was
        // appended so far is made durable.
        let sink = self.inner.journal.lock().as_ref().map(Arc::clone);
        if let Some(sink) = sink {
            let _ = sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkSpec;

    fn tmpbase(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "orte_rt_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn directories_created() {
        let rt = Runtime::new(
            Topology::uniform(3, LinkSpec::gigabit_ethernet()),
            tmpbase("dirs"),
        )
        .unwrap();
        assert!(rt.stable_dir().is_dir());
        for node in rt.topology().nodes() {
            assert!(rt.node_dir(node).is_dir());
        }
    }

    #[test]
    fn job_ids_are_unique() {
        let rt = Runtime::new(
            Topology::uniform(1, LinkSpec::gigabit_ethernet()),
            tmpbase("jobs"),
        )
        .unwrap();
        let a = rt.alloc_job();
        let b = rt.alloc_job();
        assert_ne!(a, b);
    }

    #[test]
    fn daemons_created_once_per_node() {
        let rt = Runtime::new(
            Topology::uniform(2, LinkSpec::gigabit_ethernet()),
            tmpbase("daemons"),
        )
        .unwrap();
        let d1 = rt.ensure_daemon(NodeId(1));
        let d1b = rt.ensure_daemon(NodeId(1));
        assert_eq!(d1.endpoint(), d1b.endpoint());
        assert_eq!(rt.daemons().len(), 1);
        rt.ensure_daemon(NodeId(0));
        assert_eq!(rt.daemons().len(), 2);
        rt.shutdown();
        assert!(rt.daemons().is_empty());
    }

    #[test]
    fn killed_nodes_are_marked_failed_until_respawned() {
        let rt = Runtime::new(
            Topology::uniform(2, LinkSpec::gigabit_ethernet()),
            tmpbase("failed"),
        )
        .unwrap();
        rt.ensure_daemon(NodeId(1));
        assert!(!rt.node_failed(NodeId(1)));
        rt.kill_daemon(NodeId(1));
        assert!(rt.node_failed(NodeId(1)));
        assert!(!rt.node_failed(NodeId(0)));
        rt.ensure_daemon(NodeId(1));
        assert!(!rt.node_failed(NodeId(1)));
        rt.shutdown();
    }

    #[test]
    fn spare_pool_skips_failed_nodes() {
        let rt = Runtime::new(
            Topology::uniform(4, LinkSpec::gigabit_ethernet()),
            tmpbase("spares"),
        )
        .unwrap();
        assert_eq!(rt.claim_spare(), None);
        rt.register_spare(NodeId(2));
        rt.register_spare(NodeId(3));
        rt.register_spare(NodeId(2)); // idempotent
        assert_eq!(rt.spare_nodes(), vec![NodeId(2), NodeId(3)]);
        rt.ensure_daemon(NodeId(2));
        rt.kill_daemon(NodeId(2));
        // The dead spare is skipped and dropped; the healthy one is handed out.
        assert_eq!(rt.claim_spare(), Some(NodeId(3)));
        assert_eq!(rt.claim_spare(), None);
        assert!(rt.spare_nodes().is_empty());
        rt.shutdown();
    }

    #[test]
    fn journal_captures_runtime_events_and_survives_kill() {
        let rt = Runtime::new(
            Topology::uniform(2, LinkSpec::gigabit_ethernet()),
            tmpbase("journal"),
        )
        .unwrap();
        assert!(rt.journal_path().is_none());
        let path = rt.enable_journal(None, 0).unwrap();
        // Idempotent: second call returns the same path without reopening.
        assert_eq!(rt.enable_journal(None, 0).unwrap(), path);
        rt.ensure_daemon(NodeId(1));
        rt.kill_daemon(NodeId(1));
        rt.shutdown();
        let entries = journal::read_entries(&path).unwrap();
        let phases: Vec<&str> = entries.iter().map(|e| e.phase.as_str()).collect();
        assert_eq!(phases[0], "journal.open");
        assert!(phases.contains(&"orte.daemon.spawn"));
        assert!(phases.contains(&"orte.daemon.kill"));
        // The journal lives on the host filesystem at runtime level: the
        // node's death does not take it down, and the file verifies clean.
        let report = journal::verify(&path).unwrap();
        assert!(report.ok(), "{}", report.render());
        let sink = rt.journal_sink().expect("sink still attached");
        assert_eq!(sink.append_errors(), 0);
    }

    #[test]
    fn clones_share_everything() {
        let rt = Runtime::new(
            Topology::uniform(1, LinkSpec::gigabit_ethernet()),
            tmpbase("clone"),
        )
        .unwrap();
        let rt2 = rt.clone();
        let job = rt.alloc_job();
        rt2.modex().publish(job, "k", vec![1]);
        assert_eq!(rt.modex().get(job, "k"), Some(vec![1]));
        rt.shutdown();
    }
}
