//! Job specification, launch, and the job handle.
//!
//! A job is a set of ranks mapped onto nodes, each rank being one
//! simulated process: an application thread (running the closure the OMPI
//! layer provides), a checkpoint notification thread, and a
//! [`ProcessContainer`] control plane, all registered with the node's
//! daemon. The [`JobHandle`] is what `mpirun` holds: it joins the job,
//! requests checkpoints through the selected SNAPC component, and carries
//! the job's global snapshot reference across checkpoint intervals.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Sender;
use mca::McaParams;
use netsim::NodeId;
use parking_lot::Mutex;

use cr_core::request::{CheckpointOptions, CheckpointOutcome};
use cr_core::snapshot::{CommitState, GlobalSnapshot};
use cr_core::{CrError, JobId, ProcessName, Rank};
use opal::container::OpalCtrl;
use opal::{ProcessContainer, ProcessImage};

use crate::plm::{plm_framework, Placement};
use crate::runtime::Runtime;
use crate::snapc::snapc_framework;

/// Everything a process's application thread receives at startup.
pub struct LaunchCtx {
    /// The runtime environment.
    pub runtime: Runtime,
    /// Launch parameters (MCA store snapshot shared by the job).
    pub params: Arc<McaParams>,
    /// This process's name.
    pub name: ProcessName,
    /// Total ranks in the job.
    pub nprocs: u32,
    /// Node this process runs on.
    pub node: NodeId,
    /// The process control plane.
    pub container: Arc<ProcessContainer>,
    /// Restored process image when this is a restart, `None` on a fresh
    /// launch.
    pub restored: Option<ProcessImage>,
    /// Partial restart only: the set of ranks being respawned into a job
    /// whose other ranks are still live. The rejoining process must
    /// re-publish its endpoint and run the replay handshake with the
    /// survivors instead of assuming a whole-job restart barrier.
    pub rejoin: Option<Arc<std::collections::BTreeSet<u32>>>,
    /// Set when the job was asked to terminate (checkpoint-and-terminate);
    /// application loops must exit at their next safe point.
    pub terminate: Arc<AtomicBool>,
    /// Set ([`JobHandle::set_partial_recovery`]) once something — the
    /// recovery supervisor, or a caller driving `restart_ranks` by hand —
    /// stands ready to recover failed ranks in place. While set, a
    /// failing rank must NOT pull the job down: survivors stay live and
    /// the replay handshake catches the respawned rank up. Off by
    /// default, so a plain run with the message log enabled but no
    /// recoverer still terminates on failure instead of hanging.
    pub partial_recovery: Arc<AtomicBool>,
    /// Highest globally committed checkpoint interval + 1 (0 = nothing
    /// committed yet), published by the job as commits land. The OMPI
    /// layer keys replay-log garbage collection off this: survivor
    /// message logs must outlive any checkpoint that has not provably
    /// reached global commit.
    pub commit_watermark: Arc<AtomicU64>,
}

/// The per-process entry function supplied by the layer above (OMPI).
pub type ProcMain = Arc<dyn Fn(LaunchCtx) + Send + Sync>;

/// Description of a job to launch.
pub struct JobSpec {
    /// Number of ranks.
    pub nprocs: u32,
    /// Launch parameters.
    pub params: Arc<McaParams>,
    /// Application entry, run on each rank's thread.
    pub proc_main: ProcMain,
    /// Restored images (rank order) when restarting from a snapshot.
    pub restored: Option<Vec<ProcessImage>>,
    /// When restarting: the interval the images came from, so new
    /// checkpoint intervals continue numbering past it.
    pub resume_floor: Option<u64>,
}

impl JobSpec {
    /// Fresh launch of `nprocs` ranks.
    pub fn new(nprocs: u32, params: Arc<McaParams>, proc_main: ProcMain) -> Self {
        JobSpec {
            nprocs,
            params,
            proc_main,
            restored: None,
            resume_floor: None,
        }
    }
}

struct ProcEntry {
    // Swappable: a partial restart replaces the dead incarnation's
    // container/channel/threads in place while the other entries run on.
    container: Mutex<Arc<ProcessContainer>>,
    ctrl: Mutex<Sender<OpalCtrl>>,
    app: Mutex<Option<JoinHandle<()>>>,
    notify: Mutex<Option<JoinHandle<()>>>,
}

/// Handle to a launched job (what `mpirun` holds).
pub struct JobHandle {
    runtime: Runtime,
    job: JobId,
    nprocs: u32,
    params: Arc<McaParams>,
    placement: Mutex<Placement>,
    procs: Vec<ProcEntry>,
    /// Retained for partial restart: respawned ranks re-enter through the
    /// same per-process entry the job was launched with.
    proc_main: ProcMain,
    terminate: Arc<AtomicBool>,
    /// See [`LaunchCtx::partial_recovery`].
    partial_recovery: Arc<AtomicBool>,
    /// Shared with early-release gather threads: promotions must go
    /// through the same cached document a later interval's commit will
    /// write, or a save via a stale copy would lose the promotion.
    global_snapshot: Arc<Mutex<Option<GlobalSnapshot>>>,
    resume_floor: Option<u64>,
    /// Serializes distributed checkpoint requests: overlapping requests
    /// would interleave at the daemons in inconsistent orders across
    /// nodes, so the global coordinator admits one at a time (as the
    /// original implementation does).
    checkpoint_serial: Mutex<()>,
    /// See [`LaunchCtx::commit_watermark`]; bumped here (blocking SNAPC
    /// paths) and by write-behind gather threads at promotion.
    commit_watermark: Arc<AtomicU64>,
}

impl JobHandle {
    /// Job id.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> u32 {
        self.nprocs
    }

    /// Launch parameters.
    pub fn params(&self) -> &Arc<McaParams> {
        &self.params
    }

    /// The runtime this job runs in.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The job's placement (a snapshot: partial restart moves respawned
    /// ranks onto spare nodes in place).
    pub fn placement(&self) -> Placement {
        self.placement.lock().clone()
    }

    /// Node of `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.placement.lock().node_of[rank.index()]
    }

    /// Control plane of `rank` (the current incarnation's).
    pub fn container(&self, rank: Rank) -> Arc<ProcessContainer> {
        Arc::clone(&self.procs[rank.index()].container.lock())
    }

    /// Notification channel of `rank` (used by the `direct` SNAPC
    /// component and by tests).
    pub fn ctrl(&self, rank: Rank) -> Sender<OpalCtrl> {
        self.procs[rank.index()].ctrl.lock().clone()
    }

    /// The cooperative termination flag.
    pub fn terminate_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.terminate)
    }

    /// The job's global-commit watermark (highest globally committed
    /// interval + 1; 0 = nothing committed yet).
    pub fn commit_watermark(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.commit_watermark)
    }

    /// Ask every rank to exit at its next safe point.
    pub fn request_terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
    }

    /// Declare (or retract) an active partial-recovery supervisor: while
    /// set, a failing rank leaves the survivors live instead of
    /// terminating the job (see [`LaunchCtx::partial_recovery`]). Must be
    /// set *before* failures can occur to take effect for them.
    pub fn set_partial_recovery(&self, on: bool) {
        self.partial_recovery.store(on, Ordering::SeqCst);
    }

    /// Serialize a recovery operation against distributed checkpoints:
    /// while the guard is held no interval can open, commit, or advance
    /// the commit watermark (which would GC survivor message logs
    /// mid-recovery). `MpiJob::restart_ranks` holds this for its whole
    /// fence-fetch-respawn window; [`Self::checkpoint`] takes the same
    /// lock, so an in-flight checkpoint finishes first and a concurrent
    /// ticker blocks until recovery completes.
    pub fn checkpoint_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.checkpoint_serial.lock()
    }

    /// The job's global snapshot reference, created on first use.
    pub fn global_snapshot(&self) -> Result<parking_lot::MappedMutexGuard<'_, GlobalSnapshot>, CrError> {
        let mut guard = self.global_snapshot.lock();
        if guard.is_none() {
            let mut snap =
                GlobalSnapshot::create(&self.runtime.stable_dir(), self.job, self.nprocs)?;
            if let Some(floor) = self.resume_floor {
                snap.set_resume_floor(floor)?;
            }
            let mut dump = self.params.dump();
            // Intrinsic launch facts are always recorded, even when every
            // MCA parameter was defaulted: a restart must never depend on
            // the user re-supplying anything (paper §4).
            dump.push(("np".to_string(), self.nprocs.to_string()));
            snap.record_launch_params(dump.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
            let spares: Vec<u32> = self.runtime.spare_nodes().iter().map(|n| n.0).collect();
            if !spares.is_empty() {
                snap.record_spare_pool(&spares)?;
            }
            *guard = Some(snap);
        }
        Ok(parking_lot::MutexGuard::map(guard, |g| {
            g.as_mut().expect("just initialized")
        }))
    }

    /// The shared global-snapshot cell, for write-behind gather threads
    /// that outlive this handle's borrow: promoting an interval after the
    /// asynchronous gather lands must mutate the same cached metadata
    /// document subsequent commits save through.
    pub fn global_snapshot_cell(&self) -> Arc<Mutex<Option<GlobalSnapshot>>> {
        Arc::clone(&self.global_snapshot)
    }

    /// Request a distributed checkpoint through the selected SNAPC
    /// component. Returns the global snapshot reference (paper Fig. 1-A).
    pub fn checkpoint(&self, options: &CheckpointOptions) -> Result<CheckpointOutcome, CrError> {
        let _serial = self.checkpoint_serial.lock();
        let fw = snapc_framework();
        let snapc = fw.select(&self.params).map_err(|e| CrError::Unsupported {
            detail: e.to_string(),
        })?;
        self.runtime
            .tracer()
            .record("snapc.global.request", &format!("{} by {}", self.job, options.origin));
        let outcome = snapc.checkpoint_job(self, options)?;
        if outcome.stats.commit == CommitState::GlobalCommitted {
            // Blocking paths reach global commit before returning; the
            // early-release path stays LocalCommitted here and its gather
            // thread advances the watermark at promotion instead.
            self.commit_watermark
                .fetch_max(outcome.interval + 1, Ordering::SeqCst);
        }
        self.runtime.tracer().record(
            "snapc.global.reference_returned",
            &outcome.global_snapshot.display().to_string(),
        );
        if options.terminate {
            self.request_terminate();
        }
        Ok(outcome)
    }

    /// Respawn one failed rank on `node` (typically a claimed spare) with
    /// `image` as its restored state, while every other rank stays live.
    ///
    /// The caller must have verified the rank actually failed (its app
    /// thread has exited or is exiting): the dead incarnation's app
    /// thread is joined here, so respawning a live rank would deadlock.
    /// `MpiJob::restart_ranks` enforces this by refusing any rank whose
    /// result slot is not an error.
    ///
    /// The dead incarnation's threads are reaped and its entry replaced in
    /// place: a fresh container is registered with `node`'s daemon and the
    /// job's entry function re-enters through the normal restart path with
    /// `rejoin` naming the set of simultaneously restarting ranks (the
    /// OMPI layer uses it to run the replay handshake with the survivors
    /// instead of a whole-job init barrier).
    pub fn respawn_rank(
        &self,
        rank: Rank,
        node: NodeId,
        image: ProcessImage,
        rejoin: Arc<std::collections::BTreeSet<u32>>,
    ) -> Result<(), CrError> {
        let entry = self
            .procs
            .get(rank.index())
            .ok_or_else(|| CrError::protocol(format!("respawn of unknown rank {rank}")))?;
        // Reap the dead incarnation. Its app thread has already exited
        // (that is how the failure was observed); the notification thread
        // is told to shut down over the still-live channel.
        let dead_app = { entry.app.lock().take() };
        if let Some(handle) = dead_app {
            let _ = handle.join();
        }
        entry.ctrl.lock().send(OpalCtrl::Shutdown).ok();
        let dead_notify = { entry.notify.lock().take() };
        if let Some(handle) = dead_notify {
            let _ = handle.join();
        }

        let name = ProcessName::new(self.job, rank);
        let hostname = self.runtime.topology().hostname(node).to_string();
        let container = ProcessContainer::new(
            name,
            hostname,
            self.runtime.tracer().with_actor(&name.to_string()),
        );
        let daemon = self.runtime.ensure_daemon(node);
        let (ctrl_tx, ctrl_rx) = crossbeam::channel::unbounded();
        daemon.register_proc(self.job, rank, Arc::clone(&container), ctrl_tx.clone());
        let notify = container.spawn_notification_thread(ctrl_rx);

        let ctx = LaunchCtx {
            runtime: self.runtime.clone(),
            params: Arc::clone(&self.params),
            name,
            nprocs: self.nprocs,
            node,
            container: Arc::clone(&container),
            restored: Some(image),
            rejoin: Some(rejoin),
            terminate: Arc::clone(&self.terminate),
            partial_recovery: Arc::clone(&self.partial_recovery),
            commit_watermark: Arc::clone(&self.commit_watermark),
        };
        let main = Arc::clone(&self.proc_main);
        let app = std::thread::Builder::new()
            .name(format!("app-{name}"))
            .spawn(move || main(ctx))
            .map_err(|e| CrError::Io {
                context: "spawning respawned application thread".into(),
                detail: e.to_string(),
            })?;

        {
            let mut placement = self.placement.lock();
            if let Some(slot) = placement.node_of.get_mut(rank.index()) {
                *slot = node;
            }
        }
        *entry.container.lock() = container;
        *entry.app.lock() = Some(app);
        *entry.ctrl.lock() = ctrl_tx;
        *entry.notify.lock() = Some(notify);
        Ok(())
    }

    /// Path the job's global snapshot reference will live at.
    pub fn global_snapshot_path(&self) -> PathBuf {
        self.runtime
            .stable_dir()
            .join(cr_core::snapshot::global_dir_name(self.job))
    }

    /// Wait for every rank to finish, then tear the job down (notification
    /// threads, daemon registrations, modex entries). Idempotent.
    pub fn join(&self) -> Result<(), CrError> {
        let mut panicked = Vec::new();
        for (rank, proc_entry) in self.procs.iter().enumerate() {
            if let Some(handle) = proc_entry.app.lock().take() {
                if handle.join().is_err() {
                    panicked.push(rank);
                }
            }
        }
        for proc_entry in &self.procs {
            let _ = proc_entry.ctrl.lock().send(OpalCtrl::Shutdown);
        }
        for proc_entry in &self.procs {
            if let Some(handle) = proc_entry.notify.lock().take() {
                let _ = handle.join();
            }
        }
        for node in self.placement().nodes() {
            // A node that died mid-run must stay dead: ensure_daemon would
            // resurrect it (and clear its failure mark) just to deregister
            // a job its daemon no longer remembers.
            if self.runtime.node_failed(node) {
                continue;
            }
            self.runtime.ensure_daemon(node).deregister_job(self.job);
        }
        self.runtime.modex().clear_job(self.job);
        if panicked.is_empty() {
            Ok(())
        } else {
            Err(CrError::protocol(format!(
                "rank(s) {panicked:?} panicked"
            )))
        }
    }
}

/// Launch a job into `runtime` per `spec`.
pub fn launch(runtime: &Runtime, spec: JobSpec) -> Result<JobHandle, CrError> {
    // Register built-in parameter defaults (weakest source) so the
    // snapshot metadata records the complete effective configuration and
    // `ompi-info` agrees with what components will actually read.
    mca::registry::register_defaults(&spec.params);
    // Attach the durable FT event journal (idempotent across launches into
    // the same runtime) before any of this job's events are recorded.
    let journal_enabled = spec
        .params
        .get_bool_or("journal_enabled", true)
        .map_err(|e| CrError::protocol(e.to_string()))?;
    if journal_enabled {
        let dir = spec.params.get("journal_dir").filter(|d| !d.is_empty());
        let fsync_every: u64 = spec
            .params
            .get_parsed_or("journal_fsync_every", 0)
            .map_err(|e| CrError::protocol(e.to_string()))?;
        runtime.enable_journal(dir.as_deref().map(Path::new), fsync_every)?;
    }
    if let Some(images) = &spec.restored {
        if images.len() != spec.nprocs as usize {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "restart has {} images for {} ranks",
                    images.len(),
                    spec.nprocs
                ),
            });
        }
    }

    let job = runtime.alloc_job();
    let plm = plm_framework()
        .select(&spec.params)
        .map_err(|e| CrError::Unsupported {
            detail: e.to_string(),
        })?;
    let placement = plm.map_job(spec.nprocs, runtime.topology(), &spec.params)?;
    runtime.tracer().record(
        "plm.launch",
        &format!("{job} nprocs {} cost {}", spec.nprocs, placement.launch_cost),
    );
    // The nodes the PLM held out of placement become the runtime's spare
    // pool: partial restart claims them one at a time on node loss.
    let spare_count: u32 = spec
        .params
        .get_parsed_or("orte_spare_nodes", 0u32)
        .map_err(|e| CrError::protocol(e.to_string()))?;
    if spare_count > 0 {
        let total = runtime.topology().len() as u32;
        for i in (total - spare_count)..total {
            runtime.register_spare(NodeId(i));
        }
    }

    let terminate = Arc::new(AtomicBool::new(false));
    let partial_recovery = Arc::new(AtomicBool::new(false));
    let commit_watermark = Arc::new(AtomicU64::new(0));
    let mut restored_images = spec.restored;
    let mut procs = Vec::with_capacity(spec.nprocs as usize);

    for r in 0..spec.nprocs {
        let rank = Rank(r);
        let node = placement.node_of[rank.index()];
        let hostname = runtime.topology().hostname(node).to_string();
        let name = ProcessName::new(job, rank);
        let container =
            ProcessContainer::new(name, hostname, runtime.tracer().with_actor(&name.to_string()));

        let daemon = runtime.ensure_daemon(node);
        let (ctrl_tx, ctrl_rx) = crossbeam::channel::unbounded();
        daemon.register_proc(job, rank, Arc::clone(&container), ctrl_tx.clone());
        let notify = container.spawn_notification_thread(ctrl_rx);

        let ctx = LaunchCtx {
            runtime: runtime.clone(),
            params: Arc::clone(&spec.params),
            name,
            nprocs: spec.nprocs,
            node,
            container: Arc::clone(&container),
            restored: restored_images.as_mut().map(|v| std::mem::take(&mut v[rank.index()])),
            rejoin: None,
            terminate: Arc::clone(&terminate),
            partial_recovery: Arc::clone(&partial_recovery),
            commit_watermark: Arc::clone(&commit_watermark),
        };
        let main = Arc::clone(&spec.proc_main);
        let app = std::thread::Builder::new()
            .name(format!("app-{name}"))
            .spawn(move || main(ctx))
            .map_err(|e| CrError::Io {
                context: "spawning application thread".into(),
                detail: e.to_string(),
            })?;

        procs.push(ProcEntry {
            container: Mutex::new(container),
            ctrl: Mutex::new(ctrl_tx),
            app: Mutex::new(Some(app)),
            notify: Mutex::new(Some(notify)),
        });
    }

    Ok(JobHandle {
        runtime: runtime.clone(),
        job,
        nprocs: spec.nprocs,
        params: spec.params,
        placement: Mutex::new(placement),
        procs,
        proc_main: spec.proc_main,
        terminate,
        partial_recovery,
        global_snapshot: Arc::new(Mutex::new(None)),
        resume_floor: spec.resume_floor,
        checkpoint_serial: Mutex::new(()),
        commit_watermark,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkSpec, Topology};

    fn runtime(tag: &str, nodes: u32) -> Runtime {
        let dir = std::env::temp_dir().join(format!(
            "orte_job_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir).unwrap()
    }

    #[test]
    fn launch_runs_every_rank() {
        let rt = runtime("launch", 2);
        let done = Arc::new(Mutex::new(Vec::new()));
        let done2 = Arc::clone(&done);
        let spec = JobSpec::new(
            4,
            Arc::new(McaParams::new()),
            Arc::new(move |ctx: LaunchCtx| {
                done2.lock().push((ctx.name.rank, ctx.node));
                ctx.container.gate().retire();
            }),
        );
        let handle = launch(&rt, spec).unwrap();
        assert_eq!(handle.nprocs(), 4);
        handle.join().unwrap();
        let mut results = done.lock().clone();
        results.sort_by_key(|(r, _)| *r);
        assert_eq!(results.len(), 4);
        // Round-robin placement across two nodes.
        assert_eq!(results[0].1, NodeId(0));
        assert_eq!(results[1].1, NodeId(1));
        assert_eq!(results[2].1, NodeId(0));
        rt.shutdown();
    }

    #[test]
    fn join_reports_panicked_ranks() {
        let rt = runtime("panic", 1);
        let spec = JobSpec::new(
            2,
            Arc::new(McaParams::new()),
            Arc::new(|ctx: LaunchCtx| {
                ctx.container.gate().retire();
                if ctx.name.rank == Rank(1) {
                    panic!("rank 1 blows up");
                }
            }),
        );
        let handle = launch(&rt, spec).unwrap();
        let err = handle.join().unwrap_err();
        assert!(err.to_string().contains("[1]"));
        rt.shutdown();
    }

    #[test]
    fn restored_image_count_validated() {
        let rt = runtime("badrestore", 1);
        let spec = JobSpec {
            nprocs: 3,
            params: Arc::new(McaParams::new()),
            proc_main: Arc::new(|_| {}),
            restored: Some(vec![ProcessImage::new()]),
            resume_floor: Some(0),
        };
        assert!(matches!(
            launch(&rt, spec),
            Err(CrError::BadSnapshot { .. })
        ));
        rt.shutdown();
    }

    #[test]
    fn terminate_flag_reaches_ranks() {
        let rt = runtime("term", 1);
        let spec = JobSpec::new(
            2,
            Arc::new(McaParams::new()),
            Arc::new(|ctx: LaunchCtx| {
                while !ctx.terminate.load(Ordering::SeqCst) {
                    ctx.container.gate().checkpoint_point();
                    std::thread::yield_now();
                }
                ctx.container.gate().retire();
            }),
        );
        let handle = launch(&rt, spec).unwrap();
        handle.request_terminate();
        handle.join().unwrap();
        rt.shutdown();
    }

    #[test]
    fn global_snapshot_lazily_created_with_launch_params() {
        let rt = runtime("globalsnap", 1);
        let params = Arc::new(McaParams::new());
        params.set("crs", "blcr_sim");
        let spec = JobSpec::new(
            1,
            params,
            Arc::new(|ctx: LaunchCtx| ctx.container.gate().retire()),
        );
        let handle = launch(&rt, spec).unwrap();
        {
            let snap = handle.global_snapshot().unwrap();
            assert_eq!(snap.nprocs(), 1);
            assert!(snap
                .launch_params()
                .contains(&("crs".to_string(), "blcr_sim".to_string())));
        }
        assert!(handle.global_snapshot_path().exists());
        handle.join().unwrap();
        rt.shutdown();
    }
}
