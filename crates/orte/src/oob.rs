//! Out-of-band (OOB) messaging between the HNP and the per-node daemons.
//!
//! Runtime control traffic (checkpoint coordination, cleanup, shutdown)
//! travels over the same simulated fabric as application messages but on
//! dedicated daemon endpoints, serialized with the `codec` binary format.

use std::path::PathBuf;

use bytes::Bytes;
use netsim::{Endpoint, EndpointId, Fabric, NetError, SimTime};
use serde::{Deserialize, Serialize};

use cr_core::{CrError, JobId};
use opal::store::ChunkId;

use crate::replica::ReplicaImage;

/// Tag used for all OOB traffic (tags are per-endpoint, so one suffices).
pub const TAG_OOB: u64 = 0x4000_0000_0000_0001;

/// A subtree of daemons for hierarchical coordination: the daemon at
/// `endpoint` checkpoints its own ranks and forwards to its `children`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeSpec {
    /// The subtree root daemon's raw endpoint id.
    pub endpoint: u64,
    /// Its node id (diagnostics).
    pub node: u32,
    /// Subtrees below it.
    pub children: Vec<TreeSpec>,
}

/// One rank's completed local checkpoint as reported by its daemon:
/// where the local snapshot lives, how big it is, and — for incremental
/// checkpointing — how it chains back to its full-image base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankCkpt {
    /// The rank.
    pub rank: u32,
    /// Local snapshot directory on the compute node.
    pub dir: PathBuf,
    /// Bytes on disk (delta payload size for incremental checkpoints).
    pub bytes: u64,
    /// `"full"` or `"delta"`.
    pub kind: String,
    /// Interval of the full image this context chains back to.
    pub base_interval: u64,
    /// Immediately preceding interval in the chain.
    pub prev_interval: u64,
}

/// Requests the global coordinator (HNP) sends to a daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DaemonMsg {
    /// Report which local ranks of `job` are checkpointable.
    QueryCheckpointable {
        /// Job being queried.
        job: JobId,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Initiate local checkpoints of every local rank of `job`.
    ///
    /// The daemon must notify *all* local processes before collecting any
    /// reply: the coordination protocol requires every rank to enter the
    /// checkpoint concurrently.
    CheckpointLocal {
        /// Job to checkpoint.
        job: JobId,
        /// Interval number assigned by the global coordinator.
        interval: u64,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Hierarchical checkpoint (the `tree` SNAPC component): checkpoint
    /// local ranks of `job`, concurrently forward the request into the
    /// daemon subtrees, and reply with the aggregated results of the whole
    /// subtree.
    CheckpointTree {
        /// Job to checkpoint.
        job: JobId,
        /// Interval number assigned by the global coordinator.
        interval: u64,
        /// Subtrees rooted at child daemons.
        children: Vec<TreeSpec>,
        /// Raw endpoint id to reply to (parent daemon or the HNP).
        reply_to: u64,
    },
    /// Remove the node-local files of `interval` (post-gather cleanup).
    Cleanup {
        /// Job whose scratch files should be removed.
        job: JobId,
        /// Interval to remove.
        interval: u64,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Store an in-memory replica of one rank's snapshot image in the
    /// daemon's [`crate::replica::ReplicaStore`].
    ReplicaPut {
        /// Job the image belongs to.
        job: JobId,
        /// Checkpoint interval of the image.
        interval: u64,
        /// The image itself (metadata + context files).
        image: ReplicaImage,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Fetch a rank's replica image from the daemon's store, if held.
    ReplicaFetch {
        /// Job the image belongs to.
        job: JobId,
        /// Checkpoint interval wanted.
        interval: u64,
        /// Rank whose image is wanted.
        rank: u32,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Drop every replica entry of one `(job, interval)` from the store
    /// (checkpoint expiry / cleanup).
    ReplicaExpire {
        /// Job whose entries should be dropped.
        job: JobId,
        /// Interval to drop.
        interval: u64,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// List the `(interval, rank)` replica entries held for `job`.
    ReplicaInventory {
        /// Job being queried.
        job: JobId,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Store content-addressed chunks in the daemon's in-memory chunk
    /// tier (the dedup analogue of [`DaemonMsg::ReplicaPut`]).
    ChunkPut {
        /// Job the chunks belong to.
        job: JobId,
        /// `(id, bytes)` of each chunk to hold.
        chunks: Vec<(ChunkId, Vec<u8>)>,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Fetch chunks by id from the daemon's in-memory chunk tier.
    ChunkFetch {
        /// Job the chunks belong to.
        job: JobId,
        /// Ids wanted, in reply order.
        ids: Vec<ChunkId>,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Drop chunks by id from the daemon's in-memory chunk tier (GC of a
    /// retired interval's swept chunks).
    ChunkExpire {
        /// Job whose chunks should be dropped.
        job: JobId,
        /// Ids to drop.
        ids: Vec<ChunkId>,
        /// Raw endpoint id to reply to.
        reply_to: u64,
    },
    /// Stop the daemon thread.
    Shutdown,
}

/// Replies daemons send back to the global coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DaemonReply {
    /// Answer to [`DaemonMsg::QueryCheckpointable`].
    Checkpointable {
        /// Daemon's node id.
        node: u32,
        /// `(rank, checkpointable)` for every local rank.
        ranks: Vec<(u32, bool)>,
    },
    /// A whole daemon subtree completed its checkpoints (reply to
    /// [`DaemonMsg::CheckpointTree`]).
    TreeDone {
        /// Subtree root's node id.
        node: u32,
        /// Per-rank checkpoint descriptions for every rank in the
        /// subtree, paired with the node that produced each.
        results: Vec<(u32, RankCkpt)>,
    },
    /// All local checkpoints of one node completed.
    LocalDone {
        /// Daemon's node id.
        node: u32,
        /// Per-rank checkpoint descriptions for the local ranks.
        results: Vec<RankCkpt>,
    },
    /// The daemon could not complete the request.
    Error {
        /// Daemon's node id.
        node: u32,
        /// What failed.
        detail: String,
    },
    /// Cleanup finished.
    CleanupAck {
        /// Daemon's node id.
        node: u32,
    },
    /// The daemon stored a replica (reply to [`DaemonMsg::ReplicaPut`]).
    ReplicaStored {
        /// Daemon's node id.
        node: u32,
    },
    /// Result of a [`DaemonMsg::ReplicaFetch`]: the image if held, `None`
    /// on a miss (caller moves on to the next holder or stable storage).
    ReplicaImageReply {
        /// Daemon's node id.
        node: u32,
        /// The image, when this daemon holds it.
        image: Option<ReplicaImage>,
    },
    /// Replica entries dropped (reply to [`DaemonMsg::ReplicaExpire`]).
    ReplicaExpired {
        /// Daemon's node id.
        node: u32,
        /// How many entries were removed.
        removed: usize,
    },
    /// Store listing (reply to [`DaemonMsg::ReplicaInventory`]).
    ReplicaHolding {
        /// Daemon's node id.
        node: u32,
        /// `(interval, rank)` pairs currently held for the queried job.
        entries: Vec<(u64, u32)>,
    },
    /// Chunks stored (reply to [`DaemonMsg::ChunkPut`]).
    ChunkStored {
        /// Daemon's node id.
        node: u32,
    },
    /// Result of a [`DaemonMsg::ChunkFetch`]: one entry per requested id,
    /// in request order; `None` for ids this daemon does not hold.
    ChunkData {
        /// Daemon's node id.
        node: u32,
        /// Chunk bytes (or `None` on a miss), in request order.
        chunks: Vec<Option<Vec<u8>>>,
    },
    /// Chunks dropped (reply to [`DaemonMsg::ChunkExpire`]).
    ChunkExpired {
        /// Daemon's node id.
        node: u32,
        /// How many chunks were removed.
        removed: usize,
    },
}

/// Serialize and send an OOB value to `dst`.
///
/// Returns the simulated wire time the fabric charged for the transfer, so
/// control-plane callers that ship bulk payloads (e.g. replica images) can
/// account latency/bandwidth along their critical path. Callers that only
/// steer control flow discard the value.
pub fn send_oob<T: Serialize>(
    fabric: &Fabric,
    src: EndpointId,
    dst: EndpointId,
    value: &T,
) -> Result<SimTime, CrError> {
    let bytes = codec::to_bytes(value)?;
    fabric
        .send(src, dst, TAG_OOB, Bytes::from(bytes))
        .map_err(|e| CrError::PeerLost {
            detail: format!("OOB send to {dst}: {e}"),
        })
}

/// Blocking receive of one OOB value on `endpoint`.
pub fn recv_oob<T: serde::de::DeserializeOwned>(endpoint: &Endpoint) -> Result<T, CrError> {
    let delivery = endpoint.recv().map_err(|e| CrError::PeerLost {
        detail: format!("OOB recv: {e}"),
    })?;
    Ok(codec::from_bytes(&delivery.payload)?)
}

/// Receive with a wall-clock timeout.
pub fn recv_oob_timeout<T: serde::de::DeserializeOwned>(
    endpoint: &Endpoint,
    timeout: std::time::Duration,
) -> Result<T, CrError> {
    let delivery = endpoint.recv_timeout(timeout).map_err(|e| match e {
        NetError::Timeout => CrError::PeerLost {
            detail: "OOB reply timed out".into(),
        },
        other => CrError::PeerLost {
            detail: format!("OOB recv: {other}"),
        },
    })?;
    Ok(codec::from_bytes(&delivery.payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkSpec, NodeId, Topology};

    #[test]
    fn oob_roundtrip_over_fabric() {
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let hnp = fabric.register(NodeId(0));
        let daemon = fabric.register(NodeId(1));
        let msg = DaemonMsg::CheckpointLocal {
            job: JobId(4),
            interval: 2,
            reply_to: hnp.id().0,
        };
        send_oob(&fabric, hnp.id(), daemon.id(), &msg).unwrap();
        let received: DaemonMsg = recv_oob(&daemon).unwrap();
        assert_eq!(received, msg);

        let reply = DaemonReply::LocalDone {
            node: 1,
            results: vec![RankCkpt {
                rank: 0,
                dir: PathBuf::from("/tmp/snap"),
                bytes: 1024,
                kind: "full".into(),
                base_interval: 2,
                prev_interval: 2,
            }],
        };
        send_oob(&fabric, daemon.id(), hnp.id(), &reply).unwrap();
        let received: DaemonReply = recv_oob(&hnp).unwrap();
        assert_eq!(received, reply);
    }

    #[test]
    fn recv_timeout_reports_peer_lost() {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let ep = fabric.register(NodeId(0));
        let err =
            recv_oob_timeout::<DaemonReply>(&ep, std::time::Duration::from_millis(10)).unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn send_to_dead_daemon_fails() {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let hnp = fabric.register(NodeId(0));
        let daemon = fabric.register(NodeId(0));
        let dead = daemon.id();
        drop(daemon);
        let err = send_oob(&fabric, hnp.id(), dead, &DaemonMsg::Shutdown).unwrap_err();
        assert!(matches!(err, CrError::PeerLost { .. }));
    }
}
