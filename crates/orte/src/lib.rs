//! ORTE — Open Run-Time Environment (simulated).
//!
//! ORTE provides the uniform parallel runtime under the MPI layer: process
//! launch, per-node daemons (`orted`), out-of-band (OOB) messaging, and the
//! head-node process (`mpirun`, the HNP). For checkpoint/restart it hosts
//! two of the paper's five frameworks:
//!
//! * **SNAPC** ([`snapc`]) — snapshot coordination: launching, monitoring
//!   and aggregating distributed checkpoint requests. The `full` component
//!   reproduces the paper's centralized design — a *global coordinator* in
//!   `mpirun`, a *local coordinator* in each `orted`, and an *application
//!   coordinator* in each process (Figure 1).
//! * **FILEM** ([`filem`]) — remote file management: gathering local
//!   snapshots to stable storage, preloading files at restart, and cleanup
//!   (broadcast / gather / remove).
//!
//! Plus the substrate they need:
//!
//! * [`runtime::Runtime`] — the simulated universe: the netsim fabric, the
//!   per-node scratch directories, the shared stable-storage directory,
//!   job-id allocation, and the daemon registry.
//! * [`daemon::Orted`] — the per-node daemon thread servicing OOB requests
//!   and driving local process checkpoints.
//! * [`oob`] — typed OOB messages serialized with `codec` over the fabric.
//! * [`modex`] — the rendezvous key-value store processes use to exchange
//!   endpoint addresses at `MPI_Init` and after restart.
//! * [`plm`] — the process launch framework (`rsh_sim`, `slurm_sim`
//!   components) computing placements and simulated launch costs.
//! * [`job`] — job specification, launch, and the job handle the OMPI
//!   layer and the tools operate on.
//! * [`replica`] — the peer-memory replicated snapshot store backing the
//!   FILEM `replica` component: each daemon holds its own ranks' images
//!   plus ring-replicated copies of `k` neighbors', so restart can pull
//!   from surviving memory before touching stable storage.
//! * [`sched`] — contention-aware gather scheduling: batches planned into
//!   waves against the link-contention pricing model (`filem_sched_policy`:
//!   `spread` greedy least-loaded-link vs legacy `fifo`), executed with
//!   real wall-clock and per-link byte accounting.
//! * [`store`] — the unified snapshot store over the content-addressed
//!   chunk tiers (`filem_dedup_enabled`): dedup commit, manifest-driven
//!   fetch, and refcount GC (decrement + sweep) at retirement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod filem;
pub mod job;
pub mod modex;
pub mod oob;
pub mod plm;
pub mod replica;
pub mod runtime;
pub mod sched;
pub mod snapc;
pub mod store;

pub use job::{JobHandle, JobSpec, LaunchCtx};
pub use runtime::Runtime;
