//! Mutation self-tests: delete or weaken one transition guard per model
//! and assert the checker finds a counterexample with a minimal trace of
//! the expected length.  These are the checker's own regression tests —
//! if a model or the BFS engine rots, the known-bad variants stop
//! producing their counterexamples and these fail.

use model::checker::{check, Bounds};
use model::commit::CommitModel;
use model::gc::GcModel;
use model::partial::PartialModel;
use model::quiesce::QuiesceModel;
use model::replica::ReplicaModel;

#[test]
fn pristine_models_are_exhaustively_green() {
    for name in model::MODEL_NAMES {
        let report = model::run_model(name, None, &Bounds::exhaustive())
            .expect("known model name");
        assert!(
            report.ok(),
            "{name}: {}",
            report.violation.map(|c| c.render()).unwrap_or_default()
        );
        assert!(report.exhaustive(), "{name} truncated");
    }
}

#[test]
fn smoke_bounds_still_cover_every_model_exhaustively() {
    // scripts/check.sh runs `cr-model --all --smoke`; the gate is only
    // meaningful if the bounded run still visits the full state space.
    for name in model::MODEL_NAMES {
        let report =
            model::run_model(name, None, &Bounds::smoke()).expect("known model name");
        assert!(report.ok() && report.exhaustive(), "{name} truncated under smoke bounds");
    }
}

#[test]
fn promote_before_gather_is_caught() {
    // Weakened guard: promotion no longer waits for the write-behind
    // gather to drain.  Minimal failure: begin, local_commit, promote.
    let m = CommitModel { promote_before_gather: true, ..Default::default() };
    let report = check(&m, &Bounds::exhaustive());
    let cx = report.violation.expect("mutated commit model must fail");
    assert_eq!(cx.actions(), vec!["begin(0)", "local_commit(0)", "promote(0)"]);
    assert!(cx.invariant.contains("GlobalCommitted"), "{}", cx.invariant);
}

#[test]
fn commit_regression_violates_monotonicity() {
    // Weakened rule: a direct demotion of a GlobalCommitted interval —
    // the write the commit-state lint rule forbids outside the snapshot
    // authority.  Caught by the step invariant on the regressing edge.
    let m = CommitModel { allow_regress: true, ..Default::default() };
    let report = check(&m, &Bounds::exhaustive());
    let cx = report.violation.expect("regressing commit model must fail");
    assert_eq!(cx.len(), 3, "trace: {}", cx.render());
    assert!(cx.invariant.contains("monotone"), "{}", cx.invariant);
}

#[test]
fn deleting_quiesced_barrier_rediscovers_bookmark_overrun() {
    // The PR 1/PR 3 bug: without the Quiesced exit barrier a fast rank
    // resumes and its round-1 frame lands in the slow peer's round-0
    // drain.  Expected minimal trace (8 steps): both ranks notify and
    // exchange bookmarks, rank 0 finishes its drain, exits early, sends
    // a round-1 frame, and rank 1 ingests it mid-drain.
    let report = check(&QuiesceModel { skip_barrier: true }, &Bounds::exhaustive());
    let cx = report.violation.expect("barrier-free quiesce model must fail");
    assert_eq!(cx.len(), 8, "trace: {}", cx.render());
    assert!(cx.invariant.contains("cross-round"), "{}", cx.invariant);
    let actions = cx.actions().join(" ");
    assert!(actions.contains("exit(0)"), "fast rank must exit early: {actions}");
    assert!(actions.contains("send_app(0,round=1)"), "round-1 send: {actions}");
    assert!(actions.contains("ingest(1,tag=1)"), "cross-round ingest: {actions}");
}

#[test]
fn with_the_barrier_the_overrun_is_unreachable() {
    // The same interleavings with the barrier restored: exhaustively
    // green — the PR 3 fix closes the race for every schedule, not just
    // the hand-picked ones in the integration tests.
    let report = check(&QuiesceModel::default(), &Bounds::exhaustive());
    assert!(report.ok() && report.exhaustive());
}

#[test]
fn under_replication_loses_an_image() {
    // Weakened placement: one fewer ring successor than the factor
    // promises.  Minimal failure: commit an image, kill both holders.
    let m = ReplicaModel { under_replicate: true, ..Default::default() };
    let report = check(&m, &Bounds::exhaustive());
    let cx = report.violation.expect("under-replicated model must fail");
    assert_eq!(cx.actions(), vec!["commit(0)", "kill(0)", "kill(1)"]);
    assert!(cx.invariant.contains("no live holder"), "{}", cx.invariant);
}

#[test]
fn sweep_before_decrement_dangles_a_shared_chunk() {
    // Weakened retirement: the GC sweeps the retired manifest's chunk
    // list before the decrement lands, so the refcount cannot protect a
    // chunk shared with a live manifest.  Minimal failure: commit and
    // retire interval 0 (its decref still pending), commit interval 1 —
    // which dedups onto the shared chunk `b` — then the eager sweep of
    // interval 0's list removes `b` out from under interval 1.
    let m = GcModel { sweep_before_decrement: true };
    let report = check(&m, &Bounds::exhaustive());
    let cx = report.violation.expect("eager-sweep gc model must fail");
    assert_eq!(
        cx.actions(),
        vec![
            "prepare(0)",
            "record(0)",
            "retire(0)",
            "prepare(1)",
            "record(1)",
            "sweep_retired(b)",
        ]
    );
    assert!(cx.invariant.contains("live interval"), "{}", cx.invariant);
}

#[test]
fn with_decrement_first_the_gc_is_safe() {
    // The production order (retire record, decref, sweep count-zero) is
    // exhaustively green: every crash point between the steps is a
    // reachable state, so "node death between decrement and sweep" is
    // covered — a crash can leak a blob, never dangle one.
    let report = check(&GcModel::default(), &Bounds::exhaustive());
    assert!(report.ok() && report.exhaustive());
}

#[test]
fn skipping_replay_leaves_a_message_gap() {
    // Weakened fence: `replay_done` no longer waits for the logged
    // backlog to drain.  Minimal failure: commit a checkpoint, send one
    // frame (it dies with the peer's endpoint), kill, restore from the
    // commit point, and fence immediately — the rejoined rank is live
    // with frame 1 neither delivered nor replayed.
    let m = PartialModel { skip_replay: true, ..Default::default() };
    let report = check(&m, &Bounds::exhaustive());
    let cx = report.violation.expect("fence-first partial model must fail");
    assert_eq!(
        cx.actions(),
        vec!["checkpoint(0)", "send(1)", "kill", "restore(0)", "replay_done"]
    );
    assert!(cx.invariant.contains("message gap"), "{}", cx.invariant);
}

#[test]
fn with_the_replay_guard_partial_restart_is_green() {
    // The production order (repoint, replay backlog, then fence) is
    // exhaustively green, including a second kill after a completed
    // recovery — survivors never regress and no gap survives the fence.
    let report = check(&PartialModel::default(), &Bounds::exhaustive());
    assert!(report.ok() && report.exhaustive());
}

#[test]
fn counterexample_traces_are_deterministic() {
    let a = check(&QuiesceModel { skip_barrier: true }, &Bounds::exhaustive());
    let b = check(&QuiesceModel { skip_barrier: true }, &Bounds::exhaustive());
    let ca = a.violation.expect("violation").render();
    let cb = b.violation.expect("violation").render();
    assert_eq!(ca, cb);
}

#[test]
fn model_placement_matches_production_ring() {
    // The model's successor function must agree with the production
    // placement in orte::replica for the default 4-node, factor-2 ring.
    let m = ReplicaModel::default();
    for node in 0..4u8 {
        let model_ring = m.ring_successors(node);
        let prod: Vec<u8> = orte::replica::ring_neighbors(u32::from(node), 4, 2)
            .into_iter()
            .map(|n| n as u8)
            .collect();
        assert_eq!(model_ring, prod, "node {node}");
    }
}
