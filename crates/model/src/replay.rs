//! Replay-conformance: check a *recorded* FT event journal against the
//! protocol models.
//!
//! The model checker explores every behaviour the protocol allows; this
//! module asks the converse question about one concrete run: **is the
//! sequence of events the journal recorded reachable in the model at
//! all?**  `cr-replay replay --model commit <journal>` feeds the
//! journal's phase stream through [`conformance`], which simulates the
//! named model as a *candidate set* of states (the journal does not
//! record every internal detail, so the simulation is nondeterministic):
//!
//! * each journal phase with a [`PhaseRule`] must correspond to one of a
//!   small set of model actions (matched by action name, any index);
//! * before matching, the candidate set is closed under the model's
//!   *internal* actions — steps the protocol takes without emitting a
//!   trace event (bounded, so a runaway closure fails loudly instead of
//!   hanging);
//! * a `strict` rule with no matching enabled transition is a
//!   **violation**, pinned to the journal seq that could not be
//!   explained; a lenient rule is skipped (the mapping is advisory);
//! * phases with no rule for the model are ignored.
//!
//! The mappings are deliberately conservative: `commit` and `quiesce`
//! have strict rules (their trace phases correspond one-to-one to model
//! actions), `replica` and `gc` are lenient-only sanity sweeps.  The
//! quiesce model is bounded at 2 ranks × 2 rounds, so strict quiesce
//! replay only applies to journals from runs of that shape — larger runs
//! should replay against `commit`, which is rank-agnostic.

use std::collections::BTreeSet;

use crate::checker::Model;
use crate::{commit, gc, partial, quiesce, replica};

/// One journal event to replay: its seq (for violation reports) and
/// phase string.  Built by `cr-replay` from `journal::JournalEntry`;
/// kept `String`-based here so `model` does not depend on `journal`.
#[derive(Clone, Debug)]
pub struct ReplayEvent {
    /// Journal sequence number of the event.
    pub seq: u64,
    /// Trace phase string (e.g. `snapc.global.local_commit`).
    pub phase: String,
}

/// Mapping from one journal phase to the model actions that can explain
/// it.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRule {
    /// Journal phase this rule applies to.
    pub phase: &'static str,
    /// Model action names (index argument ignored) that may explain one
    /// occurrence of the phase.
    pub actions: &'static [&'static str],
    /// Strict: an occurrence with no enabled matching transition is a
    /// violation.  Lenient: it is skipped.
    pub strict: bool,
}

/// A journal event the model cannot explain.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Journal seq of the offending event.
    pub seq: u64,
    /// Its phase string.
    pub phase: String,
    /// Why no model transition matched.
    pub detail: String,
}

/// Result of replaying one journal against one model.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Model name.
    pub model: &'static str,
    /// Total journal events examined.
    pub events: usize,
    /// Events matched to a model transition.
    pub matched: usize,
    /// Lenient-rule events with no enabled transition (skipped).
    pub skipped: usize,
    /// Events with no rule for this model (ignored).
    pub ignored: usize,
    /// True when the candidate set hit its size bound (a violation found
    /// after truncation could be spurious; none of the in-repo models
    /// get close to the bound).
    pub truncated: bool,
    /// First inexplicable event, if any.
    pub violation: Option<Violation>,
}

impl ConformanceReport {
    /// True when every strict-rule event was explained by the model.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "model {}: {} events ({} matched, {} skipped, {} ignored)\n",
            self.model, self.events, self.matched, self.skipped, self.ignored
        );
        if self.truncated {
            out.push_str("  (candidate set truncated — result is best-effort)\n");
        }
        match &self.violation {
            Some(v) => out.push_str(&format!(
                "NOT CONFORMANT at seq {} `{}`: {}\n",
                v.seq, v.phase, v.detail
            )),
            None => out.push_str("conformant: the run is model-reachable\n"),
        }
        out
    }
}

/// Candidate-set size bound for the nondeterministic simulation.
const MAX_CANDIDATES: usize = 4096;

/// The action name before the `(index)` argument, e.g. `begin(1)` →
/// `begin`.
fn action_base(label: &str) -> &str {
    label.split('(').next().unwrap_or(label)
}

/// Close `set` under the model's internal actions (bounded BFS).
fn close_internal<M: Model>(
    model: &M,
    internal: &[&str],
    set: &mut BTreeSet<M::State>,
    truncated: &mut bool,
) {
    if internal.is_empty() {
        return;
    }
    let mut queue: Vec<M::State> = set.iter().cloned().collect();
    let mut succs: Vec<(String, M::State)> = Vec::new();
    while let Some(s) = queue.pop() {
        if set.len() >= MAX_CANDIDATES {
            *truncated = true;
            return;
        }
        succs.clear();
        model.transitions(&s, &mut succs);
        for (label, next) in succs.drain(..) {
            if internal.contains(&action_base(&label)) && set.insert(next.clone()) {
                queue.push(next);
            }
        }
    }
}

/// Replay `events` against `model` under the given phase mapping.
///
/// This is the generic engine behind [`conformance`]; exposed so tests
/// (and future models) can supply their own rules.
pub fn conform<M: Model>(
    model: &M,
    rules: &[PhaseRule],
    internal: &[&str],
    events: &[ReplayEvent],
) -> ConformanceReport {
    let mut report = ConformanceReport {
        model: model.name(),
        events: events.len(),
        matched: 0,
        skipped: 0,
        ignored: 0,
        truncated: false,
        violation: None,
    };
    let mut candidates: BTreeSet<M::State> = model.initial().into_iter().collect();
    let mut succs: Vec<(String, M::State)> = Vec::new();
    for event in events {
        let rule = match rules.iter().find(|r| r.phase == event.phase) {
            Some(r) => r,
            None => {
                report.ignored += 1;
                continue;
            }
        };
        // Let the model take unobservable steps, then take one observed one.
        let mut closure = candidates.clone();
        close_internal(model, internal, &mut closure, &mut report.truncated);
        let mut matched: BTreeSet<M::State> = BTreeSet::new();
        for s in &closure {
            succs.clear();
            model.transitions(s, &mut succs);
            for (label, next) in succs.drain(..) {
                if rule.actions.contains(&action_base(&label)) {
                    matched.insert(next);
                }
            }
        }
        if matched.is_empty() {
            if rule.strict {
                report.violation = Some(Violation {
                    seq: event.seq,
                    phase: event.phase.clone(),
                    detail: format!(
                        "no enabled {:?} transition in any of {} candidate state(s): \
                         the recorded order is not model-reachable",
                        rule.actions,
                        closure.len()
                    ),
                });
                return report;
            }
            report.skipped += 1;
            continue;
        }
        report.matched += 1;
        if rule.strict {
            candidates = matched;
        } else {
            // A lenient phase *may* be this model action (or may be
            // unrelated traffic): keep both readings.
            candidates.extend(matched);
        }
        if candidates.len() > MAX_CANDIDATES {
            report.truncated = true;
            candidates = candidates.into_iter().take(MAX_CANDIDATES).collect();
        }
    }
    report
}

/// Phase rules for the `commit` model.  `filem.gather` is lenient
/// because the same phase is also recorded by the replica peer-memory
/// path and the classic blocking path (where it explains
/// `blocking_commit`).
const COMMIT_RULES: &[PhaseRule] = &[
    PhaseRule { phase: "snapc.global.initiate", actions: &["begin"], strict: true },
    PhaseRule { phase: "snapc.global.local_commit", actions: &["local_commit"], strict: true },
    PhaseRule { phase: "snapc.global.global_commit", actions: &["promote"], strict: true },
    PhaseRule { phase: "filem.gather", actions: &["gather_done", "blocking_commit"], strict: false },
    PhaseRule { phase: "orte.daemon.kill", actions: &["kill"], strict: false },
    PhaseRule { phase: "ompi.restart", actions: &["restart"], strict: false },
];

/// Phase rules for the `quiesce` model (2 ranks × 2 rounds only).
const QUIESCE_RULES: &[PhaseRule] = &[
    PhaseRule { phase: "ompi.crcp.quiesced", actions: &["send_quiesced"], strict: true },
    PhaseRule { phase: "ompi.crcp.resume", actions: &["exit"], strict: true },
];

/// Internal (trace-silent) actions of the quiesce model.
const QUIESCE_INTERNAL: &[&str] = &["send_app", "notify", "send_bm", "ingest", "finish_drain"];

/// Lenient sanity rules for the `replica` model.
const REPLICA_RULES: &[PhaseRule] = &[
    PhaseRule { phase: "filem.replica.put", actions: &["commit"], strict: false },
    PhaseRule { phase: "filem.replica.expire", actions: &["retire"], strict: false },
    PhaseRule { phase: "orte.daemon.kill", actions: &["kill"], strict: false },
];

/// Lenient sanity rules for the `gc` model (its two-interval manifest
/// shape cannot carry a whole run strictly).
const GC_RULES: &[PhaseRule] = &[
    PhaseRule { phase: "store.commit", actions: &["record"], strict: false },
    PhaseRule { phase: "store.gc.sweep", actions: &["sweep"], strict: false },
];

/// Internal actions of the gc model (no trace phase maps to them).
const GC_INTERNAL: &[&str] = &["prepare", "retire", "decref"];

/// Lenient sanity rules for the `partial` model.  The model is a
/// two-rank abstraction while a real partial-restart journal interleaves
/// every survivor's handshake, so the mapping is advisory: each phase
/// *may* be the corresponding model action.  `crcp.replay.resent`
/// records a whole backlog per survivor, hence `replay_one` is also an
/// internal action (one event can explain several replayed frames).
const PARTIAL_RULES: &[PhaseRule] = &[
    PhaseRule { phase: "snapc.global.global_commit", actions: &["checkpoint"], strict: false },
    PhaseRule { phase: "orte.daemon.kill", actions: &["kill"], strict: false },
    PhaseRule { phase: "orte.spare.claim", actions: &["restore"], strict: false },
    PhaseRule { phase: "crcp.replay.begin", actions: &["restore"], strict: false },
    PhaseRule { phase: "crcp.replay.resent", actions: &["replay_one"], strict: false },
    PhaseRule { phase: "crcp.replay.done", actions: &["replay_done"], strict: false },
];

/// Internal (trace-silent) actions of the partial model.
const PARTIAL_INTERNAL: &[&str] = &["send", "deliver", "replay_one"];

/// Replay `events` against the named shipped model.  Returns `None` for
/// an unknown model name.  The commit model's interval bound is sized to
/// the number of `snapc.global.initiate` events observed (capped at 8 to
/// keep the candidate space small).
pub fn conformance(model: &str, events: &[ReplayEvent]) -> Option<ConformanceReport> {
    match model {
        "commit" => {
            let initiates = events
                .iter()
                .filter(|e| e.phase == "snapc.global.initiate")
                .count();
            let m = commit::CommitModel {
                max_intervals: initiates.clamp(1, 8),
                ..Default::default()
            };
            Some(conform(&m, COMMIT_RULES, &[], events))
        }
        "quiesce" => Some(conform(
            &quiesce::QuiesceModel::default(),
            QUIESCE_RULES,
            QUIESCE_INTERNAL,
            events,
        )),
        "replica" => Some(conform(
            &replica::ReplicaModel::default(),
            REPLICA_RULES,
            &[],
            events,
        )),
        "gc" => Some(conform(&gc::GcModel::default(), GC_RULES, GC_INTERNAL, events)),
        "partial" => Some(conform(
            &partial::PartialModel::default(),
            PARTIAL_RULES,
            PARTIAL_INTERNAL,
            events,
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(phases: &[&str]) -> Vec<ReplayEvent> {
        phases
            .iter()
            .enumerate()
            .map(|(i, p)| ReplayEvent { seq: i as u64, phase: (*p).to_string() })
            .collect()
    }

    #[test]
    fn green_early_release_run_conforms_to_commit() {
        let report = conformance(
            "commit",
            &events(&[
                "journal.open",
                "snapc.global.request",
                "snapc.global.initiate",
                "snapc.global.local_commit",
                "filem.gather",
                "snapc.global.global_commit",
                "snapc.global.initiate",
                "snapc.global.local_commit",
                "filem.gather",
                "snapc.global.global_commit",
                "ompi.restart",
            ]),
        )
        .expect("commit model known");
        assert!(report.ok(), "{}", report.render());
        assert!(report.matched >= 7, "{}", report.render());
        assert_eq!(report.ignored, 2); // journal.open, snapc.global.request
    }

    #[test]
    fn classic_blocking_run_conforms_to_commit() {
        let report = conformance(
            "commit",
            &events(&["snapc.global.initiate", "filem.gather", "ompi.restart"]),
        )
        .expect("commit model known");
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn promote_before_gather_is_rejected() {
        let report = conformance(
            "commit",
            &events(&[
                "snapc.global.initiate",
                "snapc.global.local_commit",
                "snapc.global.global_commit", // promoted before the gather drained
                "filem.gather",
            ]),
        )
        .expect("commit model known");
        let v = report.violation.expect("must reject");
        assert_eq!(v.seq, 2);
        assert_eq!(v.phase, "snapc.global.global_commit");
    }

    #[test]
    fn commit_before_initiate_is_rejected() {
        let report = conformance(
            "commit",
            &events(&["snapc.global.local_commit", "snapc.global.initiate"]),
        )
        .expect("commit model known");
        let v = report.violation.expect("must reject");
        assert_eq!(v.seq, 0);
    }

    #[test]
    fn quiesce_round_conforms() {
        let report = conformance(
            "quiesce",
            &events(&[
                "ompi.crcp.quiesced",
                "ompi.crcp.quiesced",
                "ompi.crcp.resume",
                "ompi.crcp.resume",
            ]),
        )
        .expect("quiesce model known");
        assert!(report.ok(), "{}", report.render());
        assert_eq!(report.matched, 4);
    }

    #[test]
    fn resume_before_peer_quiesced_is_rejected() {
        let report = conformance(
            "quiesce",
            &events(&["ompi.crcp.quiesced", "ompi.crcp.resume", "ompi.crcp.resume"]),
        )
        .expect("quiesce model known");
        let v = report.violation.clone().expect("must reject");
        assert_eq!(v.seq, 1, "{}", report.render());
        assert_eq!(v.phase, "ompi.crcp.resume");
    }

    #[test]
    fn lenient_models_never_violate() {
        let noisy = events(&[
            "filem.replica.put",
            "filem.replica.expire",
            "filem.replica.expire",
            "orte.daemon.kill",
            "store.gc.sweep",
            "store.commit",
            "store.commit",
            "store.commit",
        ]);
        for model in ["replica", "gc"] {
            let report = conformance(model, &noisy).expect("model known");
            assert!(report.ok(), "{model}: {}", report.render());
        }
    }

    #[test]
    fn partial_restart_journal_conforms() {
        // The phase stream a one-kill partial-restart run records:
        // commit, node loss, spare claim, replay handshake, next commit.
        let report = conformance(
            "partial",
            &events(&[
                "snapc.global.global_commit",
                "orte.daemon.kill",
                "orte.spare.claim",
                "crcp.replay.begin",
                "crcp.replay.resent",
                "crcp.replay.done",
                "snapc.global.global_commit",
            ]),
        )
        .expect("partial model known");
        assert!(report.ok(), "{}", report.render());
        assert!(report.matched >= 5, "{}", report.render());
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(conformance("nope", &[]).is_none());
    }

    #[test]
    fn commit_sizes_intervals_to_the_run() {
        // Three initiates need max_intervals >= 3; the default of 2
        // would make the third `begin` unreachable.
        let report = conformance(
            "commit",
            &events(&[
                "snapc.global.initiate",
                "filem.gather",
                "snapc.global.initiate",
                "filem.gather",
                "snapc.global.initiate",
                "filem.gather",
            ]),
        )
        .expect("commit model known");
        assert!(report.ok(), "{}", report.render());
    }
}
