//! cr-model: a dependency-free explicit-state model checker for the
//! checkpoint/restart protocols, in the style of `cr-lint`.
//!
//! The crate ships four small hand-written transition models mirroring
//! the production state machines, checked exhaustively by BFS:
//!
//! | model     | mirrors                                   | invariant |
//! |-----------|-------------------------------------------|-----------|
//! | `commit`  | `orte::snapc` early-release commit lattice | restart only observes `GlobalCommitted`; promotion monotone |
//! | `quiesce` | `ompi::crcp` bookmark/quiesce barrier      | no cross-round frame in an earlier round's drain |
//! | `replica` | `orte::replica` ring placement             | committed images stay fetchable under `k` losses |
//! | `gc`      | `opal::store` refcount GC at retirement    | no live-manifest chunk is ever swept; refcounts match manifests |
//! | `partial` | `ompi::crcp` partial-restart replay        | survivors never regress past global commit; every logged gap replayed exactly once |
//!
//! See DESIGN.md §2.4 "Model-checked protocols" for how the models map
//! to code and how to add a new one.  The `cr-model` binary runs them
//! (`--all`, `--smoke`, `--mutate`), and `crates/model/tests/` contains
//! mutation self-tests proving the checker rediscovers the known bugs
//! when a guard is deleted.

pub mod checker;
pub mod commit;
pub mod gc;
pub mod partial;
pub mod quiesce;
pub mod replay;
pub mod replica;

pub use checker::{check, Bounds, CheckReport, Counterexample, Model, TraceStep};
pub use replay::{conformance, ConformanceReport, PhaseRule, ReplayEvent};

/// Names of the shipped models, in canonical run order.
pub const MODEL_NAMES: &[&str] = &["commit", "quiesce", "replica", "gc", "partial"];

/// Run one shipped model by name (optionally a mutated variant) under
/// `bounds`.  Returns `None` for an unknown model or mutation name.
///
/// Mutations: `commit` accepts `promote_before_gather` and
/// `allow_regress`; `quiesce` accepts `skip_barrier`; `replica` accepts
/// `under_replicate`; `gc` accepts `sweep_before_decrement`; `partial`
/// accepts `skip_replay`.
pub fn run_model(name: &str, mutation: Option<&str>, bounds: &Bounds) -> Option<CheckReport> {
    match (name, mutation) {
        ("commit", None) => Some(check(&commit::CommitModel::default(), bounds)),
        ("commit", Some("promote_before_gather")) => Some(check(
            &commit::CommitModel { promote_before_gather: true, ..Default::default() },
            bounds,
        )),
        ("commit", Some("allow_regress")) => Some(check(
            &commit::CommitModel { allow_regress: true, ..Default::default() },
            bounds,
        )),
        ("quiesce", None) => Some(check(&quiesce::QuiesceModel::default(), bounds)),
        ("quiesce", Some("skip_barrier")) => {
            Some(check(&quiesce::QuiesceModel { skip_barrier: true }, bounds))
        }
        ("replica", None) => Some(check(&replica::ReplicaModel::default(), bounds)),
        ("replica", Some("under_replicate")) => Some(check(
            &replica::ReplicaModel { under_replicate: true, ..Default::default() },
            bounds,
        )),
        ("gc", None) => Some(check(&gc::GcModel::default(), bounds)),
        ("gc", Some("sweep_before_decrement")) => Some(check(
            &gc::GcModel { sweep_before_decrement: true },
            bounds,
        )),
        ("partial", None) => Some(check(&partial::PartialModel::default(), bounds)),
        ("partial", Some("skip_replay")) => Some(check(
            &partial::PartialModel { skip_replay: true, ..Default::default() },
            bounds,
        )),
        _ => None,
    }
}
