//! Model 5: partial restart with sender-side message-log replay.
//!
//! Mirrors `ompi::crcp` partial recovery (DESIGN.md §2.8): a survivor
//! `s` keeps sending to a failable rank `f` and logs every frame sent
//! since the last global commit; the log is garbage-collected exactly at
//! global commit (the coordinated checkpoint drains the channel first,
//! so the commit point has no in-flight traffic).  When `f` is killed,
//! everything sent past the commit point exists only in the survivor's
//! log.  Recovery restores `f` from the committed checkpoint
//! (`restore`), replays the logged backlog frame by frame
//! (`replay_one`), and only then fences the channel (`replay_done`) so
//! the application resumes.
//!
//! Invariants:
//! - a rank that has finished rejoining has no gap: every message the
//!   failure lost was replayed from the log before the fence
//!   (`replay_done` is guarded on the backlog being drained);
//! - replay is exactly-once: the consume cursor never overtakes the send
//!   cursor;
//! - survivors never regress past the global commit: the send cursor and
//!   the committed floor are monotone on every edge, and the consume
//!   cursor only moves backwards on the `restore` edge of the restarted
//!   rank itself — never on a survivor edge.
//!
//! Mutation: [`PartialModel::skip_replay`] drops the backlog guard from
//! `replay_done`, modelling a fence sent before the logged frames — the
//! restarted rank resumes with a hole in its message sequence.

use crate::checker::Model;

/// Liveness of the failable rank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FState {
    /// Running and consuming messages.
    Live,
    /// Killed; its endpoint (and everything queued on it) is gone.
    Dead,
    /// Restored from the committed checkpoint, replay handshake open.
    Rejoining,
}

/// Global state of the two-rank system.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct PartialSt {
    /// Messages the survivor has sent (logged since the last commit).
    pub s_sent: u8,
    /// Messages the failable rank has consumed.
    pub f_recv: u8,
    /// Consume cursor recorded in the last committed checkpoint; the
    /// quiesce drains the channel, so this equals the send cursor at
    /// commit time and is also the log-GC floor.
    pub ckpt_recv: u8,
    /// Send cursor at the moment of the last kill: messages in
    /// `(ckpt_recv..lost_hi]` survive only in the sender log.
    pub lost_hi: u8,
    /// A committed checkpoint exists (restore needs one).
    pub ckpted: bool,
    /// Kills so far (bounded exploration budget).
    pub killed: u8,
    /// The failable rank's liveness.
    pub f: FState,
}

/// The partial-restart replay model.
#[derive(Clone, Copy)]
pub struct PartialModel {
    /// Messages the survivor may send in an execution.
    pub max_msgs: u8,
    /// Kills explored per execution.
    pub max_kills: u8,
    /// Mutation: fence the channel without draining the backlog.
    pub skip_replay: bool,
}

impl Default for PartialModel {
    fn default() -> Self {
        PartialModel { max_msgs: 3, max_kills: 2, skip_replay: false }
    }
}

impl Model for PartialModel {
    type State = PartialSt;

    fn name(&self) -> &'static str {
        "partial"
    }

    fn initial(&self) -> Vec<PartialSt> {
        vec![PartialSt {
            s_sent: 0,
            f_recv: 0,
            ckpt_recv: 0,
            lost_hi: 0,
            ckpted: false,
            killed: 0,
            f: FState::Live,
        }]
    }

    fn transitions(&self, s: &PartialSt, out: &mut Vec<(String, PartialSt)>) {
        // send: the survivor's application keeps running whatever state
        // its peer is in; every frame since the last commit is logged.
        if s.s_sent < self.max_msgs {
            let mut t = s.clone();
            t.s_sent += 1;
            out.push((format!("send({})", t.s_sent), t));
        }

        // deliver: the live peer consumes the next in-order frame.
        if s.f == FState::Live && s.f_recv < s.s_sent {
            let mut t = s.clone();
            t.f_recv += 1;
            out.push((format!("deliver({})", t.f_recv), t));
        }

        // checkpoint: the coordinated protocol quiesces (drains the
        // channel) before committing, so the commit point carries no
        // in-flight traffic; the sender log is GC'd to that point.
        if s.f == FState::Live && s.f_recv == s.s_sent {
            let mut t = s.clone();
            t.ckpt_recv = s.f_recv;
            t.ckpted = true;
            out.push((format!("checkpoint({})", s.f_recv), t));
        }

        // kill: the failable rank dies; frames past the commit point now
        // exist only in the survivor's log.
        if s.f == FState::Live && s.killed < self.max_kills {
            let mut t = s.clone();
            t.f = FState::Dead;
            t.killed += 1;
            t.lost_hi = s.s_sent;
            out.push(("kill".into(), t));
        }

        // restore: partial restart from the committed checkpoint — the
        // consume cursor rolls back to the commit point; the survivor is
        // untouched.
        if s.f == FState::Dead && s.ckpted {
            let mut t = s.clone();
            t.f = FState::Rejoining;
            t.f_recv = s.ckpt_recv;
            out.push((format!("restore({})", s.ckpt_recv), t));
        }

        // replay_one: a survivor resends the next logged frame; in-order
        // dup suppression makes it consume-exactly-once.
        if s.f == FState::Rejoining && s.f_recv < s.lost_hi {
            let mut t = s.clone();
            t.f_recv += 1;
            out.push((format!("replay_one({})", t.f_recv), t));
        }

        // replay_done: the fence closing the handshake.  The pristine
        // protocol only sends it after the whole logged backlog went out
        // (FIFO then guarantees the fence arrives last); the mutation
        // fences immediately, leaving the gap unreplayed.
        if s.f == FState::Rejoining && (self.skip_replay || s.f_recv >= s.lost_hi) {
            let mut t = s.clone();
            t.f = FState::Live;
            out.push(("replay_done".into(), t));
        }
    }

    fn invariant(&self, s: &PartialSt) -> Result<(), String> {
        if s.f == FState::Live && s.f_recv < s.lost_hi {
            return Err(format!(
                "rejoined rank has a message gap: frames {}..{} were lost with \
                 its old endpoint and never replayed from the sender log",
                s.f_recv, s.lost_hi
            ));
        }
        if s.f_recv > s.s_sent {
            return Err(format!(
                "consume cursor {} overtook send cursor {}: a logged frame was \
                 replayed more than once",
                s.f_recv, s.s_sent
            ));
        }
        Ok(())
    }

    fn step_invariant(
        &self,
        from: &PartialSt,
        action: &str,
        to: &PartialSt,
    ) -> Result<(), String> {
        // Survivors never regress past the global commit: the send cursor
        // and committed floor are monotone on every edge, and only the
        // restarted rank's own restore edge may roll the consume cursor
        // back (and then exactly to the committed floor).
        if to.s_sent < from.s_sent || to.ckpt_recv < from.ckpt_recv {
            return Err(format!(
                "survivor regressed on {action}: send cursor {} -> {}, committed \
                 floor {} -> {}",
                from.s_sent, to.s_sent, from.ckpt_recv, to.ckpt_recv
            ));
        }
        if to.f_recv < from.f_recv && !action.starts_with("restore") {
            return Err(format!(
                "consume cursor rolled back {} -> {} outside a restore edge ({action})",
                from.f_recv, to.f_recv
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Bounds};

    #[test]
    fn pristine_model_is_green() {
        let report = check(&PartialModel::default(), &Bounds::exhaustive());
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.render()));
        assert!(report.exhaustive());
        assert!(report.states > 50, "space too small: {}", report.states);
    }

    #[test]
    fn replay_is_exactly_once_across_repeated_kills() {
        // max_kills = 2 reaches kill -> restore -> replay -> kill again;
        // the pristine run staying green proves the second recovery
        // replays from the refreshed lost range, not the stale one.
        let m = PartialModel { max_kills: 2, ..Default::default() };
        let report = check(&m, &Bounds::exhaustive());
        assert!(report.ok() && report.exhaustive());
    }
}
