//! Model 2: the CRCP bookmark/quiesce exit barrier.
//!
//! Mirrors `ompi::crcp::CoordCrcp::coordinate` (DESIGN.md §2.2): at a
//! checkpoint every rank exchanges *bookmarks* (cumulative sent counts),
//! drains its channels until received == the peer's bookmark, verifies,
//! announces `Quiesced`, and only exits coordination once every peer has
//! also quiesced.  Frames are round-tagged; two ranks, two rounds, and at
//! most one application frame per rank per round keep the state space
//! exhaustively explorable while still containing the PR 1/PR 3 race.
//!
//! Invariants:
//! - no cross-round frame is counted in an earlier round's drain (a
//!   round-1 frame ingested while the receiver is still coordinating
//!   round 0 corrupts the drained-message image);
//! - no bookmark overrun: while draining, received never exceeds the
//!   peer's advertised bookmark.
//!
//! Mutation: [`QuiesceModel::skip_barrier`] deletes the `Quiesced` exit
//! barrier (a rank resumes as soon as its own drain verifies).  The
//! checker then rediscovers the bookmark-overrun bug fixed in PR 3: a
//! fast rank resumes, sends a round-1 frame, and a slow peer counts it
//! in its round-0 drain.

use crate::checker::Model;

/// Coordination phase of one rank, round-local.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    /// Application running (not coordinating).
    Run,
    /// Checkpoint notification delivered; application parked.
    Notified,
    /// Bookmark (cumulative sent count) advertised to the peer.
    BmSent,
    /// Drain complete: received matches the peer's bookmark.
    Verified,
    /// `Quiesced` announced; waiting on the peer at the exit barrier.
    QSent,
}

/// Per-rank state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RankSt {
    /// Coordination phase.
    pub phase: Phase,
    /// Current application round (0 = checkpointed round, 1 = resumed).
    pub round: u8,
    /// Application frames sent in round 0 (0 or 1).
    pub sent_r0: u8,
    /// Application frames sent in round 1 (0 or 1).
    pub sent_r1: u8,
    /// Cumulative frames received from the peer.
    pub recv: u8,
    /// Bookmark this rank advertised (cumulative sent at `BmSent`).
    pub bm: Option<u8>,
}

impl RankSt {
    fn start() -> Self {
        RankSt { phase: Phase::Run, round: 0, sent_r0: 0, sent_r1: 0, recv: 0, bm: None }
    }

    fn sent_total(&self) -> u8 {
        self.sent_r0 + self.sent_r1
    }

    /// True while this rank is inside its round-0 *drain window*: any
    /// frame counted here lands in the checkpoint's drained-message
    /// image.  Once the drain verifies (`Verified`/`QSent`) the image is
    /// sealed, so later arrivals are ordinary post-checkpoint traffic.
    fn in_drain_window(&self) -> bool {
        self.round == 0 && (self.phase == Phase::Notified || self.phase == Phase::BmSent)
    }
}

/// Global state: two ranks, a FIFO channel in each direction carrying
/// round tags, and a sticky flag recording a cross-round ingestion.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct QuiesceSt {
    /// Rank 0.
    pub r0: RankSt,
    /// Rank 1.
    pub r1: RankSt,
    /// In-flight frames rank 0 -> rank 1 (round tags, FIFO).
    pub c01: Vec<u8>,
    /// In-flight frames rank 1 -> rank 0 (round tags, FIFO).
    pub c10: Vec<u8>,
    /// Set when a rank counted a later-round frame in its round-0 drain.
    pub cross_round: bool,
}

/// The bookmark/quiesce model; `skip_barrier` selects the mutated
/// (pre-PR 3) variant without the `Quiesced` exit barrier.
#[derive(Clone, Copy, Default)]
pub struct QuiesceModel {
    /// Mutation: delete the `Quiesced` barrier — a rank exits
    /// coordination as soon as its own drain verifies.
    pub skip_barrier: bool,
}

const LAST_ROUND: u8 = 1;

impl QuiesceSt {
    fn rank(&self, id: u8) -> &RankSt {
        if id == 0 {
            &self.r0
        } else {
            &self.r1
        }
    }

    fn with_rank(&self, id: u8, r: RankSt) -> QuiesceSt {
        let mut t = self.clone();
        if id == 0 {
            t.r0 = r;
        } else {
            t.r1 = r;
        }
        t
    }

    /// Channel delivering frames *to* rank `id`.
    fn inbound(&self, id: u8) -> &Vec<u8> {
        if id == 0 {
            &self.c10
        } else {
            &self.c01
        }
    }

    fn push_outbound(&mut self, from: u8, tag: u8) {
        if from == 0 {
            self.c01.push(tag);
        } else {
            self.c10.push(tag);
        }
    }

    fn pop_inbound(&mut self, id: u8) -> Option<u8> {
        let chan = if id == 0 { &mut self.c10 } else { &mut self.c01 };
        if chan.is_empty() {
            None
        } else {
            Some(chan.remove(0))
        }
    }
}

impl Model for QuiesceModel {
    type State = QuiesceSt;

    fn name(&self) -> &'static str {
        "quiesce"
    }

    fn initial(&self) -> Vec<QuiesceSt> {
        vec![QuiesceSt {
            r0: RankSt::start(),
            r1: RankSt::start(),
            c01: Vec::new(),
            c10: Vec::new(),
            cross_round: false,
        }]
    }

    fn transitions(&self, s: &QuiesceSt, out: &mut Vec<(String, QuiesceSt)>) {
        for id in 0..2u8 {
            let me = *s.rank(id);
            let peer = *s.rank(1 - id);

            // send_app: one application frame per round, only while
            // running (the PML parks application traffic once notified).
            if me.phase == Phase::Run {
                let budget = if me.round == 0 { me.sent_r0 } else { me.sent_r1 };
                if budget == 0 {
                    let mut r = me;
                    if me.round == 0 {
                        r.sent_r0 = 1;
                    } else {
                        r.sent_r1 = 1;
                    }
                    let mut t = s.with_rank(id, r);
                    t.push_outbound(id, me.round);
                    out.push((format!("send_app({id},round={})", me.round), t));
                }
            }

            // notify: global checkpoint request lands at end of round 0.
            if me.phase == Phase::Run && me.round == 0 {
                let mut r = me;
                r.phase = Phase::Notified;
                out.push((format!("notify({id})"), s.with_rank(id, r)));
            }

            // send_bm: advertise the cumulative sent count.
            if me.phase == Phase::Notified {
                let mut r = me;
                r.phase = Phase::BmSent;
                r.bm = Some(me.sent_total());
                out.push((format!("send_bm({id})"), s.with_rank(id, r)));
            }

            // ingest: pump the wire — production polls progress in every
            // phase, including while parked at the exit barrier.
            if !s.inbound(id).is_empty() {
                let mut t = s.clone();
                if let Some(tag) = t.pop_inbound(id) {
                    let mut r = me;
                    r.recv += 1;
                    if me.in_drain_window() && tag > 0 {
                        t.cross_round = true;
                    }
                    t = t.with_rank(id, r);
                    out.push((format!("ingest({id},tag={tag})"), t));
                }
            }

            // finish_drain: received everything the peer sent before its
            // bookmark — the drained-message image is complete.
            if me.phase == Phase::BmSent {
                if let Some(b) = peer.bm {
                    if me.recv == b {
                        let mut r = me;
                        r.phase = Phase::Verified;
                        out.push((format!("finish_drain({id})"), s.with_rank(id, r)));
                    }
                }
            }

            if self.skip_barrier {
                // Mutation: the Quiesced barrier is deleted — resume as
                // soon as the local drain verifies.
                if me.phase == Phase::Verified && me.round < LAST_ROUND {
                    let mut r = me;
                    r.phase = Phase::Run;
                    r.round = me.round + 1;
                    out.push((format!("exit({id})"), s.with_rank(id, r)));
                }
            } else {
                // send_quiesced: announce the local drain is complete.
                if me.phase == Phase::Verified {
                    let mut r = me;
                    r.phase = Phase::QSent;
                    out.push((format!("send_quiesced({id})"), s.with_rank(id, r)));
                }
                // exit: leave coordination only once the peer has also
                // quiesced (or already left) — the PR 3 barrier.
                let peer_quiesced = peer.phase == Phase::QSent || peer.round > me.round;
                if me.phase == Phase::QSent && peer_quiesced && me.round < LAST_ROUND {
                    let mut r = me;
                    r.phase = Phase::Run;
                    r.round = me.round + 1;
                    out.push((format!("exit({id})"), s.with_rank(id, r)));
                }
            }
        }
    }

    fn invariant(&self, s: &QuiesceSt) -> Result<(), String> {
        if s.cross_round {
            return Err(
                "cross-round frame counted in a round-0 drain: a resumed rank's \
                 post-checkpoint send leaked into a peer's checkpoint image"
                    .to_owned(),
            );
        }
        for id in 0..2u8 {
            let me = s.rank(id);
            let peer = s.rank(1 - id);
            if me.phase == Phase::BmSent {
                if let Some(b) = peer.bm {
                    if me.recv > b {
                        return Err(format!(
                            "bookmark overrun at rank {id}: received {} frames but \
                             the peer's bookmark promised {b}",
                            me.recv
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Bounds};

    #[test]
    fn pristine_model_is_green() {
        let report = check(&QuiesceModel::default(), &Bounds::exhaustive());
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.render()));
        assert!(report.exhaustive());
        assert!(report.states > 100, "space too small: {}", report.states);
    }
}
