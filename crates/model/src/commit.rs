//! Model 1: the `CommitState` lattice under `snapc_early_release`.
//!
//! Mirrors the production pipeline in `orte::snapc::gather_commit_cleanup`
//! (see DESIGN.md §2.3): an interval is captured and *locally* committed,
//! the stable-storage gather proceeds in a write-behind thread, and only
//! when the gather drains is the interval *promoted* to `GlobalCommitted`.
//! The classic blocking path commits atomically.  A node can be killed
//! mid-gather, failing every in-flight gather.  A restart observes the
//! newest `GlobalCommitted` interval.
//!
//! Invariants:
//! - safety: a `GlobalCommitted` (restart-visible) interval has a fully
//!   drained gather — restart never depends on data that is not durable;
//! - monotonicity (step invariant): an interval's commit state never
//!   moves down the `Uncommitted < LocalCommitted < GlobalCommitted`
//!   lattice.
//!
//! Mutations (for the self-tests in `tests/mutations.rs`):
//! - [`CommitModel::promote_before_gather`] drops the gather-drained
//!   guard on promotion, exactly the bug `snapc_early_release` would
//!   have if promotion did not wait on the write-behind drain;
//! - [`CommitModel::allow_regress`] adds a direct "field write" that
//!   demotes a `GlobalCommitted` interval, the class of bug the
//!   `commit-state` cr-lint rule keeps out of production code.

use crate::checker::Model;

/// Commit lattice, mirroring `cr_core::snapshot::CommitState`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Commit {
    /// Captured but not yet locally durable.
    Uncommitted,
    /// Locally durable; gather to stable storage may still be in flight.
    LocalCommitted,
    /// Globally durable and restart-visible.
    GlobalCommitted,
}

/// Progress of the write-behind gather for one interval.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Gather {
    /// No gather started (pre-commit, or classic path pre-drain).
    NotStarted,
    /// Write-behind transfer running on the source node.
    InFlight,
    /// All bytes on stable storage.
    Done,
    /// Source node died mid-transfer.
    Failed,
}

/// Per-interval state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct IntervalSt {
    /// Position in the commit lattice.
    pub commit: Commit,
    /// Write-behind gather progress.
    pub gather: Gather,
}

/// Global state: the interval table, source-node liveness, and the
/// interval (if any) that a restart has observed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CommitSt {
    /// Intervals in begin order (index = interval id).
    pub intervals: Vec<IntervalSt>,
    /// Whether the source node (holding local scratch) is alive.
    pub node_alive: bool,
    /// Interval id a restart chose, sticky once set.
    pub observed: Option<usize>,
}

/// The commit-pipeline model; flags select mutated (buggy) variants.
#[derive(Clone, Copy)]
pub struct CommitModel {
    /// Mutation: promote without waiting for the gather to drain.
    pub promote_before_gather: bool,
    /// Mutation: allow a direct demotion of a committed interval.
    pub allow_regress: bool,
    /// Maximum concurrent intervals (default 2: tiny space that still
    /// covers cross-interval interleavings; journal replay sizes it to
    /// the number of `begin`s actually observed).
    pub max_intervals: usize,
}

impl Default for CommitModel {
    fn default() -> Self {
        CommitModel {
            promote_before_gather: false,
            allow_regress: false,
            max_intervals: 2,
        }
    }
}

impl Model for CommitModel {
    type State = CommitSt;

    fn name(&self) -> &'static str {
        "commit"
    }

    fn initial(&self) -> Vec<CommitSt> {
        vec![CommitSt { intervals: Vec::new(), node_alive: true, observed: None }]
    }

    fn transitions(&self, s: &CommitSt, out: &mut Vec<(String, CommitSt)>) {
        // begin: open a new interval on a live node.
        if s.node_alive && s.intervals.len() < self.max_intervals {
            let mut t = s.clone();
            t.intervals.push(IntervalSt { commit: Commit::Uncommitted, gather: Gather::NotStarted });
            out.push((format!("begin({})", s.intervals.len()), t));
        }
        for (i, iv) in s.intervals.iter().enumerate() {
            // local_commit: early-release path — locally durable, hand
            // the gather to the write-behind drain.
            if s.node_alive && iv.commit == Commit::Uncommitted {
                let mut t = s.clone();
                t.set(i, IntervalSt { commit: Commit::LocalCommitted, gather: Gather::InFlight });
                out.push((format!("local_commit({i})"), t));

                // blocking_commit: classic path — gather and global
                // commit complete atomically before release.
                let mut t = s.clone();
                t.set(i, IntervalSt { commit: Commit::GlobalCommitted, gather: Gather::Done });
                out.push((format!("blocking_commit({i})"), t));
            }
            // gather_done: the write-behind drain finishes.
            if s.node_alive && iv.gather == Gather::InFlight {
                let mut t = s.clone();
                t.set(i, IntervalSt { commit: iv.commit, gather: Gather::Done });
                out.push((format!("gather_done({i})"), t));
            }
            // promote: LocalCommitted -> GlobalCommitted once durable.
            let gather_ok = iv.gather == Gather::Done || self.promote_before_gather;
            if iv.commit == Commit::LocalCommitted && gather_ok {
                let mut t = s.clone();
                t.set(i, IntervalSt { commit: Commit::GlobalCommitted, gather: iv.gather });
                out.push((format!("promote({i})"), t));
            }
            // regress (mutation only): direct demotion, the kind of
            // write the commit-state lint rule forbids outside the
            // snapshot authority.
            if self.allow_regress && iv.commit == Commit::GlobalCommitted {
                let mut t = s.clone();
                t.set(i, IntervalSt { commit: Commit::LocalCommitted, gather: iv.gather });
                out.push((format!("regress({i})"), t));
            }
        }
        // kill: the source node dies; every in-flight gather fails.
        if s.node_alive {
            let mut t = s.clone();
            t.node_alive = false;
            t.intervals = t
                .intervals
                .iter()
                .map(|iv| {
                    if iv.gather == Gather::InFlight {
                        IntervalSt { commit: iv.commit, gather: Gather::Failed }
                    } else {
                        *iv
                    }
                })
                .collect();
            out.push(("kill".to_owned(), t));
        }
        // restart: observe the newest GlobalCommitted interval.
        let newest_global = s
            .intervals
            .iter()
            .enumerate()
            .rev()
            .find(|(_, iv)| iv.commit == Commit::GlobalCommitted)
            .map(|(i, _)| i);
        if let Some(i) = newest_global {
            if s.observed != Some(i) {
                let mut t = s.clone();
                t.observed = Some(i);
                out.push((format!("restart({i})"), t));
            }
        }
    }

    fn invariant(&self, s: &CommitSt) -> Result<(), String> {
        for (i, iv) in s.intervals.iter().enumerate() {
            if iv.commit == Commit::GlobalCommitted && iv.gather != Gather::Done {
                return Err(format!(
                    "interval {i} is GlobalCommitted but its gather is {:?}: \
                     a restart-visible interval must be fully durable",
                    iv.gather
                ));
            }
        }
        if let Some(i) = s.observed {
            let ok = s
                .intervals
                .get(i)
                .map(|iv| iv.commit == Commit::GlobalCommitted)
                .unwrap_or(false);
            if !ok {
                return Err(format!(
                    "restart observed interval {i} which is not GlobalCommitted"
                ));
            }
        }
        Ok(())
    }

    fn step_invariant(
        &self,
        from: &CommitSt,
        action: &str,
        to: &CommitSt,
    ) -> Result<(), String> {
        for (i, (a, b)) in from.intervals.iter().zip(to.intervals.iter()).enumerate() {
            if b.commit < a.commit {
                return Err(format!(
                    "interval {i} regressed {:?} -> {:?} on `{action}`: \
                     promotion must be monotone",
                    a.commit, b.commit
                ));
            }
        }
        if to.intervals.len() < from.intervals.len() {
            return Err(format!("interval table shrank on `{action}`"));
        }
        Ok(())
    }
}

impl CommitSt {
    /// Replace interval `i` (no-op when out of range; transitions only
    /// pass indices obtained by enumerating the live table).
    fn set(&mut self, i: usize, iv: IntervalSt) {
        if let Some(slot) = self.intervals.get_mut(i) {
            *slot = iv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Bounds};

    #[test]
    fn pristine_model_is_green() {
        let report = check(&CommitModel::default(), &Bounds::exhaustive());
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.render()));
        assert!(report.exhaustive());
        assert!(report.states > 50, "space too small: {}", report.states);
    }
}
