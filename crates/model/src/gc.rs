//! Model 4: refcount GC for the content-addressed chunk store.
//!
//! Mirrors the dedup commit/retire lifecycle split between `orte::store`
//! and `opal::store::ChunkStore` (DESIGN.md §2.5).  Each lifecycle step
//! is a separate durable action, in the production order:
//!
//! * `prepare(i)` — insert interval `i`'s blobs and increment their
//!   refcounts (`ChunkStore::insert` + `incref_all`), *before* any
//!   manifest exists;
//! * `record(i)` — record the manifest (`record_chunk_manifests` +
//!   `commit_interval`): the interval is now restartable ("live");
//! * `retire(i)` — drop the manifest record first
//!   (`GlobalSnapshot::retire_interval`);
//! * `decref(i)` — decrement the retired chunks' refcounts
//!   (`decref_all`);
//! * `sweep(c)` — reclaim a count-zero blob (`ChunkStore::sweep`).
//!
//! Because every step is its own transition, a node death between any
//! two of them is just a reachable intermediate state, so the exhaustive
//! check covers "crash between decrement and sweep" (and every other
//! crash point) for free: a crash can leak a blob, never dangle one.
//!
//! Two intervals share chunk `b` (cross-interval dedup): interval 0's
//! manifest is `{a, b}`, interval 1's is `{b, c}`.
//!
//! Invariant: every chunk referenced by a *live* (recorded) manifest is
//! present in the store — "no live-manifest chunk is ever swept".  An
//! auxiliary invariant pins the refcount file to the manifest
//! references, so accounting drift is caught too.
//!
//! Mutation: [`GcModel::sweep_before_decrement`] lets retirement sweep
//! the retired interval's chunk list directly, before the decrement
//! lands.  The refcount can then no longer protect chunks shared with a
//! still-live manifest — which is exactly why the production order is
//! decrement-then-sweep-count-zero.

use crate::checker::Model;

/// Where an interval is in the commit/retire lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    /// No trace of the interval: blobs not inserted, no manifest.
    Absent,
    /// Blobs inserted and increfed; manifest not yet recorded.
    Prepared,
    /// Manifest recorded: the interval is restartable.
    Live,
    /// Manifest record dropped; refcounts not yet decremented.
    Unrecorded,
}

/// Global state: per-interval lifecycle phase, per-chunk refcount
/// (mirroring `refcounts.meta`) and blob presence on disk.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct GcSt {
    /// Lifecycle phase of each interval.
    pub phases: [Phase; 2],
    /// Refcount of each chunk (`a`, `b`, `c`).
    pub refs: [u8; 3],
    /// Whether each chunk's blob is present in the store.
    pub present: [bool; 3],
}

impl GcSt {
    fn phase(&self, i: usize) -> Phase {
        self.phases.get(i).copied().unwrap_or(Phase::Absent)
    }

    fn set_phase(&mut self, i: usize, p: Phase) {
        if let Some(slot) = self.phases.get_mut(i) {
            *slot = p;
        }
    }

    fn refcount(&self, c: usize) -> u8 {
        self.refs.get(c).copied().unwrap_or(0)
    }

    fn incref(&mut self, c: usize) {
        if let Some(r) = self.refs.get_mut(c) {
            *r = r.saturating_add(1);
        }
    }

    fn decref(&mut self, c: usize) {
        if let Some(r) = self.refs.get_mut(c) {
            *r = r.saturating_sub(1);
        }
    }

    fn is_present(&self, c: usize) -> bool {
        self.present.get(c).copied().unwrap_or(false)
    }

    fn set_present(&mut self, c: usize, v: bool) {
        if let Some(p) = self.present.get_mut(c) {
            *p = v;
        }
    }
}

/// The refcount-GC model.
#[derive(Clone, Copy, Default)]
pub struct GcModel {
    /// Mutation: retirement sweeps the retired manifest's chunk list
    /// before the decrement is applied.
    pub sweep_before_decrement: bool,
}

/// Manifest of each interval, as chunk indices (`b` = 1 is shared).
const MANIFESTS: [&[usize]; 2] = [&[0, 1], &[1, 2]];

fn chunk_name(c: usize) -> char {
    (b'a' + c as u8) as char
}

impl Model for GcModel {
    type State = GcSt;

    fn name(&self) -> &'static str {
        "gc"
    }

    fn initial(&self) -> Vec<GcSt> {
        vec![GcSt {
            phases: [Phase::Absent; 2],
            refs: [0; 3],
            present: [false; 3],
        }]
    }

    fn transitions(&self, s: &GcSt, out: &mut Vec<(String, GcSt)>) {
        for (i, manifest) in MANIFESTS.iter().enumerate() {
            match s.phase(i) {
                // commit, first half: insert blobs + incref.  A dedup hit
                // (blob already present) still increments, exactly like
                // `incref_all` after `insert`.
                Phase::Absent => {
                    let mut t = s.clone();
                    t.set_phase(i, Phase::Prepared);
                    for &c in *manifest {
                        t.set_present(c, true);
                        t.incref(c);
                    }
                    out.push((format!("prepare({i})"), t));
                }
                // commit, second half: the manifest record lands.
                Phase::Prepared => {
                    let mut t = s.clone();
                    t.set_phase(i, Phase::Live);
                    out.push((format!("record({i})"), t));
                }
                // retirement, first half: the manifest record is dropped.
                Phase::Live => {
                    let mut t = s.clone();
                    t.set_phase(i, Phase::Unrecorded);
                    out.push((format!("retire({i})"), t));
                }
                // retirement, second half: refcounts decremented.
                Phase::Unrecorded => {
                    let mut t = s.clone();
                    t.set_phase(i, Phase::Absent);
                    for &c in *manifest {
                        t.decref(c);
                    }
                    out.push((format!("decref({i})"), t));
                }
            }
        }
        for c in 0..3 {
            // GC sweep: reclaim a count-zero blob.
            if s.is_present(c) && s.refcount(c) == 0 {
                let mut t = s.clone();
                t.set_present(c, false);
                out.push((format!("sweep({})", chunk_name(c)), t));
            }
            // Mutation: sweep straight off the retired manifest's chunk
            // list, before `decref` has run.
            if self.sweep_before_decrement && s.is_present(c) {
                let retired = MANIFESTS.iter().enumerate().any(|(i, m)| {
                    s.phase(i) == Phase::Unrecorded && m.contains(&c)
                });
                if retired {
                    let mut t = s.clone();
                    t.set_present(c, false);
                    out.push((format!("sweep_retired({})", chunk_name(c)), t));
                }
            }
        }
    }

    fn invariant(&self, s: &GcSt) -> Result<(), String> {
        // Safety: a live manifest's chunks must all be fetchable.
        for (i, manifest) in MANIFESTS.iter().enumerate() {
            if s.phase(i) != Phase::Live {
                continue;
            }
            for &c in *manifest {
                if !s.is_present(c) {
                    return Err(format!(
                        "chunk {} of live interval {i}'s manifest was swept: \
                         restart would dangle",
                        chunk_name(c)
                    ));
                }
            }
        }
        // Accounting: the refcount file must equal the number of
        // intervals holding a reference (prepared, live or unrecorded —
        // everything between incref and decref).
        for c in 0..3 {
            let held = MANIFESTS
                .iter()
                .enumerate()
                .filter(|(i, m)| s.phase(*i) != Phase::Absent && m.contains(&c))
                .count() as u8;
            if s.refcount(c) != held {
                return Err(format!(
                    "refcount drift on chunk {}: file says {}, manifests hold {held}",
                    chunk_name(c),
                    s.refcount(c)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Bounds};

    #[test]
    fn pristine_model_is_green() {
        let report = check(&GcModel::default(), &Bounds::exhaustive());
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.render()));
        assert!(report.exhaustive());
        assert!(report.states > 20, "space too small: {}", report.states);
    }

    #[test]
    fn crash_between_decref_and_sweep_only_leaks() {
        // The state right after decref(1) with sweep not yet run: chunk c
        // is a count-zero blob on disk.  It must be reachable (the crash
        // window exists) and invariant-clean (a leak, not a dangle).
        let m = GcModel::default();
        let s = GcSt {
            phases: [Phase::Absent, Phase::Absent],
            refs: [0, 0, 0],
            present: [true, true, true],
        };
        assert!(m.invariant(&s).is_ok());
    }
}
