//! Explicit-state model checker: breadth-first exploration of the full
//! reachable state space of a small hand-written transition system, with
//! invariant checking, deterministic counterexample traces, and a
//! delta-debug style trace-minimization pass.
//!
//! The engine is intentionally tiny and dependency-free, mirroring how
//! `cr-lint` keeps the static-analysis layer in-tree.  States must be
//! `Clone + Ord + Debug`: `Ord` gives a canonical visited-set order so
//! exploration (and therefore the first counterexample found) is fully
//! deterministic across runs.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;
use std::time::{Duration, Instant};

/// A transition system with invariants, checked exhaustively by [`check`].
pub trait Model {
    /// The state type.  `Ord` makes the visited set (and thus BFS order)
    /// canonical; `Debug` renders counterexample traces.
    type State: Clone + Ord + Debug;

    /// Short stable name used by the `cr-model` CLI and stats JSON.
    fn name(&self) -> &'static str;

    /// The initial state(s) of the system.
    fn initial(&self) -> Vec<Self::State>;

    /// Push every enabled `(action-label, successor)` pair for `state`
    /// onto `out`.  Labels must uniquely identify the transition from a
    /// given state (they are used to replay traces during minimization).
    fn transitions(&self, state: &Self::State, out: &mut Vec<(String, Self::State)>);

    /// State invariant, checked on every reachable state.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    /// Edge invariant, checked on every explored transition (e.g. a
    /// monotonicity property relating `from` and `to`).
    fn step_invariant(
        &self,
        _from: &Self::State,
        _action: &str,
        _to: &Self::State,
    ) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration bounds.  `exhaustive()` is effectively unbounded for the
/// in-repo models (a few thousand states each); `smoke()` caps work for
/// the tier-1 gate so a state-space explosion shows up as a truncated
/// (and therefore failing) run instead of a hung CI job.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Stop inserting new states past this count (run is marked truncated).
    pub max_states: usize,
    /// Do not expand states at this BFS depth or beyond.
    pub max_depth: usize,
}

impl Bounds {
    /// Bounds for full verification: large enough that every in-repo
    /// model is explored completely.
    pub fn exhaustive() -> Self {
        Bounds { max_states: 2_000_000, max_depth: usize::MAX }
    }

    /// Deterministic bounded run for `scripts/check.sh`; the in-repo
    /// models still complete exhaustively well inside these bounds.
    pub fn smoke() -> Self {
        Bounds { max_states: 200_000, max_depth: 64 }
    }
}

/// One step of a counterexample trace.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Action label of the transition taken.
    pub action: String,
    /// Debug rendering of the state reached by the action.
    pub state: String,
}

/// A minimal-length violating execution: an initial state plus the
/// actions leading to the violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The invariant message produced at the violating state/edge.
    pub invariant: String,
    /// Debug rendering of the initial state of the trace.
    pub initial: String,
    /// The steps from the initial state to the violation.
    pub steps: Vec<TraceStep>,
}

impl Counterexample {
    /// Number of transitions in the trace.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the initial state itself violates the invariant.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The action labels of the trace, in order.
    pub fn actions(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.action.as_str()).collect()
    }

    /// Human-readable rendering of the trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("violated: {}\n", self.invariant));
        out.push_str(&format!("  init: {}\n", self.initial));
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {} -> {}\n", i + 1, step.action, step.state));
        }
        out
    }
}

/// Result of one model-checking run.
#[derive(Debug)]
pub struct CheckReport {
    /// Model name.
    pub model: &'static str,
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions explored (edges, including ones to known states).
    pub transitions: usize,
    /// Maximum BFS depth reached.
    pub depth: usize,
    /// True when a bound stopped exploration before the frontier emptied.
    pub truncated: bool,
    /// First (minimal-depth, then minimized) violation found, if any.
    pub violation: Option<Counterexample>,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// True when the full reachable state space was explored.
    pub fn exhaustive(&self) -> bool {
        !self.truncated
    }
}

/// Explore the reachable state space of `model` breadth-first up to
/// `bounds`, checking [`Model::invariant`] on every state and
/// [`Model::step_invariant`] on every edge.  The first violation found
/// is at minimal BFS depth; its trace is additionally run through a
/// shrink pass before being returned.
pub fn check<M: Model>(model: &M, bounds: &Bounds) -> CheckReport {
    let start = Instant::now();
    let mut states: Vec<M::State> = Vec::new();
    let mut index: BTreeMap<M::State, usize> = BTreeMap::new();
    // parent[i] = Some((predecessor id, action)) for non-initial states.
    let mut parent: Vec<Option<(usize, String)>> = Vec::new();
    let mut depth_of: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut truncated = false;
    let mut violation: Option<Counterexample> = None;

    for s in model.initial() {
        if index.contains_key(&s) {
            continue;
        }
        let id = states.len();
        index.insert(s.clone(), id);
        states.push(s);
        parent.push(None);
        depth_of.push(0);
        queue.push_back(id);
    }
    for (id, s) in states.iter().enumerate() {
        if let Err(msg) = model.invariant(s) {
            violation = Some(trace_to(&states, &parent, id, msg, None));
            break;
        }
    }

    let mut succs: Vec<(String, M::State)> = Vec::new();
    'bfs: while violation.is_none() {
        let id = match queue.pop_front() {
            Some(id) => id,
            None => break,
        };
        let cur = match states.get(id) {
            Some(s) => s.clone(),
            None => break,
        };
        let depth = depth_of.get(id).copied().unwrap_or(0);
        if depth >= bounds.max_depth {
            truncated = true;
            continue;
        }
        succs.clear();
        model.transitions(&cur, &mut succs);
        for (action, next) in succs.drain(..) {
            transitions += 1;
            if let Err(msg) = model.step_invariant(&cur, &action, &next) {
                let extra = Some(TraceStep { action, state: format!("{next:?}") });
                violation = Some(trace_to(&states, &parent, id, msg, extra));
                break 'bfs;
            }
            if index.contains_key(&next) {
                continue;
            }
            if states.len() >= bounds.max_states {
                truncated = true;
                continue;
            }
            let nid = states.len();
            index.insert(next.clone(), nid);
            states.push(next);
            parent.push(Some((id, action)));
            depth_of.push(depth + 1);
            max_depth = max_depth.max(depth + 1);
            if let Err(msg) = model.invariant(states.get(nid).unwrap_or(&cur)) {
                violation = Some(trace_to(&states, &parent, nid, msg, None));
                break 'bfs;
            }
            queue.push_back(nid);
        }
    }

    if let Some(cx) = violation.take() {
        violation = Some(shrink(model, cx));
    }

    CheckReport {
        model: model.name(),
        states: states.len(),
        transitions,
        depth: max_depth,
        truncated,
        violation,
        wall: start.elapsed(),
    }
}

/// Reconstruct the action path from an initial state to `id` via the
/// BFS parent pointers, optionally appending one extra (violating) edge.
fn trace_to<S: Clone + Debug>(
    states: &[S],
    parent: &[Option<(usize, String)>],
    id: usize,
    invariant: String,
    extra: Option<TraceStep>,
) -> Counterexample {
    let mut rev: Vec<TraceStep> = Vec::new();
    let mut cur = id;
    loop {
        match parent.get(cur).and_then(|p| p.as_ref()) {
            Some((pred, action)) => {
                let state = states
                    .get(cur)
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| "<missing>".to_owned());
                rev.push(TraceStep { action: action.clone(), state });
                cur = *pred;
            }
            None => break,
        }
    }
    rev.reverse();
    if let Some(step) = extra {
        rev.push(step);
    }
    let initial = states
        .get(cur)
        .map(|s| format!("{s:?}"))
        .unwrap_or_else(|| "<missing>".to_owned());
    Counterexample { invariant, initial, steps: rev }
}

/// Outcome of replaying an action list from the (single) initial state.
enum Replay<S> {
    /// All actions applied, no violation; final state returned.
    Clean(S),
    /// A violation occurred after applying `upto` actions (the violating
    /// edge, if any, is included in the count).
    Violates { upto: usize },
    /// Some action label was not enabled; the candidate trace is invalid.
    Stuck,
}

fn replay<M: Model>(model: &M, init: &M::State, actions: &[String]) -> Replay<M::State> {
    if model.invariant(init).is_err() {
        return Replay::Violates { upto: 0 };
    }
    let mut cur = init.clone();
    let mut succs: Vec<(String, M::State)> = Vec::new();
    for (i, action) in actions.iter().enumerate() {
        succs.clear();
        model.transitions(&cur, &mut succs);
        let next = succs.iter().find(|(a, _)| a == action).map(|(_, s)| s.clone());
        let next = match next {
            Some(s) => s,
            None => return Replay::Stuck,
        };
        if model.step_invariant(&cur, action, &next).is_err()
            || model.invariant(&next).is_err()
        {
            return Replay::Violates { upto: i + 1 };
        }
        cur = next;
    }
    Replay::Clean(cur)
}

/// Delta-debug style minimization: repeatedly try dropping single steps
/// from the trace, keeping any deletion after which a replay still
/// violates an invariant; finally truncate at the first violation point.
/// BFS already yields minimal-depth traces, so this mostly confirms
/// minimality — but it also tightens traces whose violating edge leads
/// to an already-visited state.
fn shrink<M: Model>(model: &M, cx: Counterexample) -> Counterexample {
    let init = model
        .initial()
        .into_iter()
        .find(|s| format!("{s:?}") == cx.initial);
    let init = match init {
        Some(s) => s,
        None => return cx,
    };
    let mut actions: Vec<String> =
        cx.steps.iter().map(|s| s.action.clone()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < actions.len() {
            let mut candidate = actions.clone();
            candidate.remove(i);
            match replay(model, &init, &candidate) {
                Replay::Violates { upto, .. } => {
                    candidate.truncate(upto);
                    actions = candidate;
                    changed = true;
                }
                _ => i += 1,
            }
        }
    }
    // Rebuild the concrete states along the minimized action list.
    let mut steps: Vec<TraceStep> = Vec::new();
    let mut cur = init.clone();
    let mut succs: Vec<(String, M::State)> = Vec::new();
    let mut invariant = cx.invariant.clone();
    for action in &actions {
        succs.clear();
        model.transitions(&cur, &mut succs);
        let next = succs.iter().find(|(a, _)| a == action).map(|(_, s)| s.clone());
        let next = match next {
            Some(s) => s,
            None => return cx,
        };
        if let Err(msg) = model.step_invariant(&cur, action, &next) {
            invariant = msg;
        } else if let Err(msg) = model.invariant(&next) {
            invariant = msg;
        }
        steps.push(TraceStep { action: action.clone(), state: format!("{next:?}") });
        cur = next;
    }
    Counterexample { invariant, initial: cx.initial, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counter that must stay below 3; `inc` and a no-op `spin` action.
    struct Counter;
    impl Model for Counter {
        type State = u8;
        fn name(&self) -> &'static str {
            "counter"
        }
        fn initial(&self) -> Vec<u8> {
            vec![0]
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            if *s < 5 {
                out.push(("inc".to_owned(), s + 1));
            }
            out.push(("spin".to_owned(), *s));
        }
        fn invariant(&self, s: &u8) -> Result<(), String> {
            if *s >= 3 {
                Err(format!("counter reached {s}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn bfs_finds_minimal_trace() {
        let report = check(&Counter, &Bounds::exhaustive());
        let cx = report.violation.expect("counter must violate");
        assert_eq!(cx.actions(), vec!["inc", "inc", "inc"]);
        assert_eq!(cx.invariant, "counter reached 3");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = check(&Counter, &Bounds::exhaustive());
        let b = check(&Counter, &Bounds::exhaustive());
        let ca = a.violation.expect("violation");
        let cb = b.violation.expect("violation");
        assert_eq!(ca.render(), cb.render());
    }

    /// Bounded counter without violations explores exhaustively.
    struct Bounded;
    impl Model for Bounded {
        type State = u8;
        fn name(&self) -> &'static str {
            "bounded"
        }
        fn initial(&self) -> Vec<u8> {
            vec![0]
        }
        fn transitions(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            if *s < 10 {
                out.push(("inc".to_owned(), s + 1));
            }
        }
        fn invariant(&self, _s: &u8) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn exhaustive_run_reports_full_space() {
        let report = check(&Bounded, &Bounds::exhaustive());
        assert!(report.ok());
        assert!(report.exhaustive());
        assert_eq!(report.states, 11);
        assert_eq!(report.depth, 10);
    }

    #[test]
    fn depth_bound_marks_truncated() {
        let report = check(&Bounded, &Bounds { max_states: 1_000, max_depth: 3 });
        assert!(report.ok());
        assert!(!report.exhaustive());
        assert_eq!(report.states, 4); // depths 0..=3
    }

    #[test]
    fn state_bound_marks_truncated() {
        let report = check(&Bounded, &Bounds { max_states: 5, max_depth: usize::MAX });
        assert!(report.ok());
        assert!(!report.exhaustive());
        assert_eq!(report.states, 5);
    }
}
