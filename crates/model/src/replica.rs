//! Model 3: replica ring placement under `k` node losses.
//!
//! Mirrors `orte::replica` (DESIGN.md §2.5 in spirit): when node `n`
//! commits its checkpoint image, the image is held in memory by `n` and
//! pushed to its `factor` ring successors `(n+1)%N .. (n+factor)%N`.
//! Nodes may be killed (up to `factor` losses, the design's stated
//! survivability), images may be retired, and a restart must be able to
//! fetch every still-committed image from a live holder.
//!
//! Invariant: every committed image has at least one live holder —
//! "every committed interval stays fetchable".
//!
//! Mutation: [`ReplicaModel::under_replicate`] pushes to only
//! `factor - 1` successors, so `factor` losses can orphan an image.

use crate::checker::Model;

/// Global state: per-node committed image (holder bitmask recorded at
/// commit time) and node liveness.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ReplicaSt {
    /// `images[n]` is `Some(holders)` when node `n`'s image is committed;
    /// `holders` is a bitmask over nodes recorded when the push ran.
    pub images: Vec<Option<u8>>,
    /// Bitmask of live nodes.
    pub alive: u8,
}

/// The replica-placement model.
#[derive(Clone, Copy)]
pub struct ReplicaModel {
    /// Number of nodes (`N`).
    pub nodes: u8,
    /// Replication factor (`k`): ring successors per image.
    pub factor: u8,
    /// Maximum node kills explored (the survivability budget).
    pub max_kills: u8,
    /// Mutation: push to one fewer successor than the factor promises.
    pub under_replicate: bool,
}

impl Default for ReplicaModel {
    fn default() -> Self {
        ReplicaModel { nodes: 4, factor: 2, max_kills: 2, under_replicate: false }
    }
}

impl ReplicaModel {
    /// Ring successors of `node`, mirroring `orte::replica::ring_neighbors`:
    /// the next `factor` nodes after `node` modulo `nodes`, excluding
    /// `node` itself, capped at `nodes - 1` distinct peers.
    pub fn ring_successors(&self, node: u8) -> Vec<u8> {
        let effective = if self.under_replicate {
            self.factor.saturating_sub(1)
        } else {
            self.factor
        };
        let want = effective.min(self.nodes.saturating_sub(1));
        (1..=want)
            .map(|step| (node + step) % self.nodes.max(1))
            .collect()
    }

    fn holder_mask(&self, node: u8) -> u8 {
        let mut mask = 1u8 << node;
        for peer in self.ring_successors(node) {
            mask |= 1u8 << peer;
        }
        mask
    }

    fn killed(&self, s: &ReplicaSt) -> u32 {
        let all = ((1u16 << self.nodes) - 1) as u8;
        (all & !s.alive).count_ones()
    }
}

impl Model for ReplicaModel {
    type State = ReplicaSt;

    fn name(&self) -> &'static str {
        "replica"
    }

    fn initial(&self) -> Vec<ReplicaSt> {
        let all = ((1u16 << self.nodes) - 1) as u8;
        vec![ReplicaSt { images: vec![None; self.nodes as usize], alive: all }]
    }

    fn transitions(&self, s: &ReplicaSt, out: &mut Vec<(String, ReplicaSt)>) {
        for n in 0..self.nodes {
            let slot = s.images.get(n as usize).cloned().flatten();
            let live = s.alive & (1 << n) != 0;

            // commit: node n checkpoints and pushes replicas.  Only live
            // holders actually receive a copy (a dead successor is an
            // unreachable daemon, as in `orte::replica::replicate`).
            if live && slot.is_none() {
                let holders = self.holder_mask(n) & s.alive;
                let mut t = s.clone();
                t.set_image(n, Some(holders));
                out.push((format!("commit({n})"), t));
            }

            // retire: the image is dropped (interval retired) and leaves
            // the invariant's scope.
            if slot.is_some() {
                let mut t = s.clone();
                t.set_image(n, None);
                out.push((format!("retire({n})"), t));
            }

            // kill: node n dies, within the survivability budget.
            if live && self.killed(s) < self.max_kills as u32 {
                let mut t = s.clone();
                t.alive &= !(1 << n);
                out.push((format!("kill({n})"), t));
            }
        }
    }

    fn invariant(&self, s: &ReplicaSt) -> Result<(), String> {
        for (n, slot) in s.images.iter().enumerate() {
            if let Some(holders) = slot {
                if holders & s.alive == 0 {
                    return Err(format!(
                        "committed image of node {n} has no live holder: \
                         the interval is no longer fetchable"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl ReplicaSt {
    fn set_image(&mut self, n: u8, v: Option<u8>) {
        if let Some(slot) = self.images.get_mut(n as usize) {
            *slot = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Bounds};

    #[test]
    fn pristine_model_is_green() {
        let report = check(&ReplicaModel::default(), &Bounds::exhaustive());
        assert!(report.ok(), "{:?}", report.violation.map(|c| c.render()));
        assert!(report.exhaustive());
        assert!(report.states > 50, "space too small: {}", report.states);
    }

    #[test]
    fn successors_wrap_and_exclude_self() {
        let m = ReplicaModel::default();
        assert_eq!(m.ring_successors(3), vec![0, 1]);
        assert_eq!(m.ring_successors(0), vec![1, 2]);
    }
}
