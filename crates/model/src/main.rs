//! `cr-model` binary: exhaustively check the protocol models.
//!
//! ```text
//! cr-model [--all | MODEL...] [--smoke] [--mutate NAME] [--list]
//!          [--json] [--bench-json PATH]
//! ```
//!
//! Default bounds explore every model's full reachable state space;
//! `--smoke` applies the bounded tier-1 limits (the in-repo models still
//! finish exhaustively inside them — truncation is reported and fails).
//! `--mutate NAME` runs a named mutated variant of the selected model and
//! expects a counterexample, printing its minimized trace.
//!
//! Exit codes: 0 all models green (or mutation found its counterexample),
//! 1 violation/truncation (or mutation found nothing), 2 usage error.

use std::process::ExitCode;

use model::{run_model, Bounds, CheckReport, MODEL_NAMES};

fn main() -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut json = false;
    let mut list = false;
    let mut mutate: Option<String> = None;
    let mut bench_json: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all" => names = MODEL_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--list" => list = true,
            "--mutate" => match args.next() {
                Some(m) => mutate = Some(m),
                None => {
                    eprintln!("cr-model: --mutate needs a mutation name");
                    return ExitCode::from(2);
                }
            },
            "--bench-json" => match args.next() {
                Some(p) => bench_json = Some(p),
                None => {
                    eprintln!("cr-model: --bench-json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: cr-model [--all | MODEL...] [--smoke] [--mutate NAME] \
                     [--list] [--json] [--bench-json PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => {
                eprintln!("cr-model: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for name in MODEL_NAMES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if names.is_empty() {
        names = MODEL_NAMES.iter().map(|s| (*s).to_owned()).collect();
    }
    if mutate.is_some() && names.len() != 1 {
        eprintln!("cr-model: --mutate applies to exactly one model");
        return ExitCode::from(2);
    }

    let bounds = if smoke { Bounds::smoke() } else { Bounds::exhaustive() };
    let mut reports: Vec<CheckReport> = Vec::new();
    let mut failed = false;

    for name in &names {
        let report = match run_model(name, mutate.as_deref(), &bounds) {
            Some(r) => r,
            None => {
                match mutate.as_deref() {
                    Some(m) => eprintln!("cr-model: unknown model/mutation {name:?}/{m:?}"),
                    None => eprintln!("cr-model: unknown model {name:?}"),
                }
                return ExitCode::from(2);
            }
        };
        let green = report.ok() && report.exhaustive();
        // A mutated run is expected to find a counterexample.
        let expected = if mutate.is_some() { !report.ok() } else { green };
        if !expected {
            failed = true;
        }
        if !json {
            println!(
                "cr-model: {:<8} states={:<6} transitions={:<7} depth={:<3} {} [{}] ({:.1?})",
                report.model,
                report.states,
                report.transitions,
                report.depth,
                if report.exhaustive() { "exhaustive" } else { "TRUNCATED" },
                match (&report.violation, mutate.is_some()) {
                    (None, false) => "ok",
                    (None, true) => "NO COUNTEREXAMPLE",
                    (Some(_), false) => "VIOLATION",
                    (Some(_), true) => "counterexample found",
                },
                report.wall,
            );
            if let Some(cx) = &report.violation {
                print!("{}", cx.render());
                println!("  ({} steps after minimization)", cx.len());
            }
        }
        reports.push(report);
    }

    let json_text = render_reports_json(&reports, smoke);
    if json {
        println!("{json_text}");
    }
    if let Some(path) = bench_json {
        if let Err(e) = std::fs::write(&path, format!("{json_text}\n")) {
            eprintln!("cr-model: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Hand-rolled stats JSON (the workspace has no real serde), shaped for
/// `BENCH_model.json`: per-model states/transitions/depth/wall-time so
/// protocol-surface growth shows up as a visible diff.
fn render_reports_json(reports: &[CheckReport], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bounds\": \"{}\",\n", if smoke { "smoke" } else { "exhaustive" }));
    out.push_str("  \"models\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"transitions\": {}, \
             \"depth\": {}, \"exhaustive\": {}, \"ok\": {}, \"wall_ms\": {}}}{}\n",
            r.model,
            r.states,
            r.transitions,
            r.depth,
            r.exhaustive(),
            r.ok(),
            r.wall.as_millis(),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}");
    out
}
