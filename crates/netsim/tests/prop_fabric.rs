//! Property tests on the fabric: reliability, per-sender FIFO, and cost
//! model monotonicity under randomized traffic.

use bytes::Bytes;
use netsim::{Fabric, LinkSpec, NodeId, SimTime, Topology};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sent message is delivered exactly once, in per-sender order,
    /// regardless of the interleaving of senders.
    #[test]
    fn reliable_exactly_once_fifo(
        n_senders in 1usize..5,
        counts in vec(1usize..60, 1..5),
        nodes in 1u32..4,
    ) {
        let fabric = Fabric::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()));
        let receiver = fabric.register(NodeId(0));
        let dst = receiver.id();
        let n_senders = n_senders.min(counts.len());

        let handles: Vec<_> = (0..n_senders)
            .map(|s| {
                let fabric = fabric.clone();
                let sender = fabric.register(NodeId((s as u32) % nodes));
                let count = counts[s];
                std::thread::spawn(move || {
                    for i in 0..count {
                        let payload = Bytes::from(vec![s as u8; i % 7 + 1]);
                        fabric.send(sender.id(), dst, i as u64, payload).unwrap();
                    }
                    sender.id()
                })
            })
            .collect();
        let sender_ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let total: usize = counts[..n_senders].iter().sum();
        let mut next_expected = vec![0u64; n_senders];
        for _ in 0..total {
            let d = receiver.recv().unwrap();
            let s = sender_ids.iter().position(|id| *id == d.src).unwrap();
            prop_assert_eq!(d.tag, next_expected[s], "per-sender FIFO violated");
            next_expected[s] += 1;
        }
        prop_assert_eq!(receiver.queued(), 0);
        for (s, &count) in counts[..n_senders].iter().enumerate() {
            prop_assert_eq!(next_expected[s], count as u64);
        }
    }

    /// Simulated wire cost is monotone in payload size and respects the
    /// latency floor.
    #[test]
    fn cost_model_monotone(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let link = LinkSpec::gigabit_ethernet();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.transfer_cost(small) <= link.transfer_cost(large));
        prop_assert!(link.transfer_cost(small) >= link.latency);
    }

    /// Stats conservation: bytes sent equals bytes counted by the fabric.
    #[test]
    fn stats_conserve_bytes(sizes in vec(0usize..4096, 0..40)) {
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::infiniband()));
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let mut total = 0u64;
        for s in &sizes {
            a.send_to(b.id(), 0, Bytes::from(vec![0u8; *s])).unwrap();
            total += *s as u64;
        }
        let stats = fabric.stats();
        prop_assert_eq!(stats.total_bytes, total);
        prop_assert_eq!(stats.total_msgs, sizes.len() as u64);
        prop_assert_eq!(stats.endpoint(a.id()).bytes_sent, total);
        let mut sim = SimTime::ZERO;
        for s in &sizes {
            sim += fabric.topology().cost(NodeId(0), NodeId(1), *s);
        }
        prop_assert_eq!(stats.endpoint(a.id()).sim_time_sent, sim);
    }
}
