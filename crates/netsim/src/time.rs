//! Virtual time for the cost model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in nanoseconds.
///
/// The fabric never sleeps for simulated time; it *accounts* it. Tests run
/// at memory speed while benchmarks can still report cluster-shaped
/// latencies by summing `SimTime` along the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_nanos(4).as_nanos(), 4);
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(a * 3, SimTime::from_micros(30));
        assert_eq!(a / 2, SimTime::from_micros(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let total: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(total, SimTime::from_micros(18));
    }

    #[test]
    fn addition_saturates() {
        let huge = SimTime::from_nanos(u64::MAX);
        assert_eq!(huge + SimTime::from_nanos(1), huge);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
