//! The message fabric: registration, send/receive, failure injection.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};

use crate::error::NetError;
use crate::stats::{EndpointStats, FabricStats};
use crate::time::SimTime;
use crate::topology::{NodeId, Topology};

/// Tracks how many bulk transfers currently occupy each link, so
/// concurrent transfers sharing a wire are each charged a fair (~1/N)
/// slice of its bandwidth. Links are keyed by unordered node pair;
/// loopback paths use the `(n, n)` key. Cheap to clone; clones share
/// the counters.
#[derive(Clone, Default)]
pub struct LinkMeter {
    inflight: Arc<Mutex<HashMap<(NodeId, NodeId), u32>>>,
}

impl fmt::Debug for LinkMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let map = self.inflight.lock();
        f.debug_struct("LinkMeter")
            .field("busy_links", &map.len())
            .finish()
    }
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

impl LinkMeter {
    /// A meter with no transfers in flight.
    pub fn new() -> Self {
        LinkMeter::default()
    }

    /// Mark a bulk transfer as occupying the `a`—`b` link. The returned
    /// guard releases the link share when dropped.
    pub fn begin(&self, a: NodeId, b: NodeId) -> LinkSlot {
        let key = link_key(a, b);
        *self.inflight.lock().entry(key).or_insert(0) += 1;
        LinkSlot {
            meter: self.clone(),
            key,
        }
    }

    /// Number of bulk transfers currently occupying the `a`—`b` link.
    pub fn inflight(&self, a: NodeId, b: NodeId) -> u32 {
        self.inflight
            .lock()
            .get(&link_key(a, b))
            .copied()
            .unwrap_or(0)
    }
}

/// RAII share of a link held by one in-flight bulk transfer; dropping it
/// returns the bandwidth slice to the link.
#[derive(Debug)]
pub struct LinkSlot {
    meter: LinkMeter,
    key: (NodeId, NodeId),
}

impl Drop for LinkSlot {
    fn drop(&mut self) {
        let mut map = self.meter.inflight.lock();
        if let Some(count) = map.get_mut(&self.key) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                map.remove(&self.key);
            }
        }
    }
}

/// A read-only view of the network used to price bulk transfers: a
/// topology plus (optionally) the live contention meter. Components that
/// move checkpoint data take a `NetView` instead of a bare [`Topology`],
/// so the same code prices transfers honestly whether or not anything
/// else is on the wire.
#[derive(Clone, Copy)]
pub struct NetView<'a> {
    topology: &'a Topology,
    meter: Option<&'a LinkMeter>,
}

impl fmt::Debug for NetView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetView")
            .field("nodes", &self.topology.len())
            .field("metered", &self.meter.is_some())
            .finish()
    }
}

impl<'a> NetView<'a> {
    /// A view that ignores contention (legacy cost model).
    pub fn uncontended(topology: &'a Topology) -> Self {
        NetView {
            topology,
            meter: None,
        }
    }

    /// A view that prices transfers against the live link meter.
    pub fn contended(topology: &'a Topology, meter: &'a LinkMeter) -> Self {
        NetView {
            topology,
            meter: Some(meter),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &'a Topology {
        self.topology
    }

    /// Price moving `bytes` from `a` to `b` given the current number of
    /// transfers sharing the link (at least this one).
    pub fn cost(&self, a: NodeId, b: NodeId, bytes: usize) -> SimTime {
        let share = self.meter.map_or(1, |m| m.inflight(a, b).max(1));
        self.topology.contended_cost(a, b, bytes, share)
    }

    /// Occupy the `a`—`b` link for the duration of a bulk transfer, if
    /// this view meters contention. Hold the returned slot while copying
    /// so concurrent transfers see each other.
    pub fn begin_transfer(&self, a: NodeId, b: NodeId) -> Option<LinkSlot> {
        self.meter.map(|m| m.begin(a, b))
    }
}

/// Identifier of a registered endpoint (one per simulated process, daemon,
/// or tool connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u64);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A message as seen by the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Application-level tag (namespaced by the layers above).
    pub tag: u64,
    /// Payload bytes.
    pub payload: Bytes,
    /// Simulated wire time this message spent in transit.
    pub wire_time: SimTime,
}

struct Mailbox {
    node: NodeId,
    tx: Sender<Delivery>,
}

struct FabricInner {
    topology: Topology,
    next_id: AtomicU64,
    mailboxes: RwLock<HashMap<EndpointId, Mailbox>>,
    stats: RwLock<FabricStats>,
    link_meter: LinkMeter,
}

/// Handle to the simulated network. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl fmt::Debug for Fabric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let boxes = self.inner.mailboxes.read();
        f.debug_struct("Fabric")
            .field("nodes", &self.inner.topology.len())
            .field("endpoints", &boxes.len())
            .finish()
    }
}

impl Fabric {
    /// Bring up a fabric over `topology`.
    pub fn new(topology: Topology) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                topology,
                next_id: AtomicU64::new(1),
                mailboxes: RwLock::new(HashMap::new()),
                stats: RwLock::new(FabricStats::default()),
                link_meter: LinkMeter::new(),
            }),
        }
    }

    /// The topology this fabric runs over.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The shared per-link contention meter. Bulk-transfer machinery
    /// (FILEM gathers) registers its in-flight copies here; messages sent
    /// through the fabric are charged the contended cost of their link.
    pub fn link_meter(&self) -> &LinkMeter {
        &self.inner.link_meter
    }

    /// A contention-aware pricing view over this fabric's topology.
    pub fn netview(&self) -> NetView<'_> {
        NetView::contended(&self.inner.topology, &self.inner.link_meter)
    }

    /// Register a new endpoint on `node`, returning its receive handle.
    ///
    /// # Panics
    /// Panics if `node` is not part of the topology.
    pub fn register(&self, node: NodeId) -> Endpoint {
        assert!(
            (node.0 as usize) < self.inner.topology.len(),
            "{node} is not in the topology"
        );
        let id = EndpointId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = channel::unbounded();
        self.inner
            .mailboxes
            .write()
            .insert(id, Mailbox { node, tx });
        Endpoint {
            id,
            node,
            fabric: self.clone(),
            rx,
        }
    }

    /// Node an endpoint lives on, if it is alive.
    pub fn node_of(&self, ep: EndpointId) -> Option<NodeId> {
        self.inner.mailboxes.read().get(&ep).map(|m| m.node)
    }

    /// True when `ep` is registered and not killed.
    pub fn is_alive(&self, ep: EndpointId) -> bool {
        self.inner.mailboxes.read().contains_key(&ep)
    }

    /// Send `payload` from `src` to `dst`.
    ///
    /// Returns the simulated wire time charged for the transfer. Delivery
    /// is reliable and per-sender FIFO (TCP-like, matching the transports
    /// the original implementation ran over).
    pub fn send(
        &self,
        src: EndpointId,
        dst: EndpointId,
        tag: u64,
        payload: Bytes,
    ) -> Result<SimTime, NetError> {
        let boxes = self.inner.mailboxes.read();
        let src_node = boxes
            .get(&src)
            .map(|m| m.node)
            .ok_or(NetError::SenderDead { src })?;
        let mbox = boxes.get(&dst).ok_or(NetError::Unreachable { dst })?;
        // Messages share the wire with any in-flight bulk transfers: a
        // FILEM gather streaming over this link slows OOB traffic down.
        let share = self
            .inner
            .link_meter
            .inflight(src_node, mbox.node)
            .saturating_add(1);
        let wire_time =
            self.inner
                .topology
                .contended_cost(src_node, mbox.node, payload.len(), share);
        let bytes = payload.len() as u64;
        let delivery = Delivery {
            src,
            tag,
            payload,
            wire_time,
        };
        mbox.tx
            .send(delivery)
            .map_err(|_| NetError::Unreachable { dst })?;
        drop(boxes);

        let mut stats = self.inner.stats.write();
        stats.total_msgs += 1;
        stats.total_bytes += bytes;
        let s = stats.endpoints.entry(src).or_default();
        s.msgs_sent += 1;
        s.bytes_sent += bytes;
        s.sim_time_sent += wire_time;
        Ok(wire_time)
    }

    /// Kill an endpoint: simulates process death. Its queue is torn down;
    /// subsequent sends to it fail with [`NetError::Unreachable`]; blocked
    /// receivers on it wake with [`NetError::Disconnected`].
    pub fn kill(&self, ep: EndpointId) {
        self.inner.mailboxes.write().remove(&ep);
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> FabricStats {
        self.inner.stats.read().clone()
    }

    /// Reset traffic counters (benchmark warm-up hygiene).
    pub fn reset_stats(&self) {
        *self.inner.stats.write() = FabricStats::default();
    }

    fn note_received(&self, ep: EndpointId, delivery: &Delivery) {
        let mut stats = self.inner.stats.write();
        let s = stats.endpoints.entry(ep).or_default();
        s.msgs_received += 1;
        s.bytes_received += delivery.payload.len() as u64;
    }

    /// Per-endpoint counters convenience accessor.
    pub fn endpoint_stats(&self, ep: EndpointId) -> EndpointStats {
        self.inner.stats.read().endpoint(ep)
    }
}

/// Receiving side of a registered endpoint.
///
/// The sender side is addressed by [`EndpointId`] through the fabric, which
/// is how MPI-style any-to-any communication works here: there are no
/// per-pair connections to set up.
pub struct Endpoint {
    id: EndpointId,
    node: NodeId,
    fabric: Fabric,
    rx: Receiver<Delivery>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("node", &self.node)
            .finish()
    }
}

impl Endpoint {
    /// This endpoint's id (its address for senders).
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Node this endpoint lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fabric this endpoint belongs to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Convenience: send from this endpoint.
    pub fn send_to(&self, dst: EndpointId, tag: u64, payload: Bytes) -> Result<SimTime, NetError> {
        self.fabric.send(self.id, dst, tag, payload)
    }

    /// Blocking receive.
    ///
    /// Wakes with [`NetError::Disconnected`] once the endpoint has been
    /// killed *and* every already-queued message has been drained — killed
    /// processes may still have in-flight messages that coordination
    /// protocols need to observe.
    pub fn recv(&self) -> Result<Delivery, NetError> {
        match self.rx.recv() {
            Ok(d) => {
                self.fabric.note_received(self.id, &d);
                Ok(d)
            }
            Err(_) => Err(NetError::Disconnected),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Delivery, NetError> {
        match self.rx.try_recv() {
            Ok(d) => {
                self.fabric.note_received(self.id, &d);
                Ok(d)
            }
            Err(TryRecvError::Empty) => Err(NetError::Empty),
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Receive with a wall-clock timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Delivery, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(d) => {
                self.fabric.note_received(self.id, &d);
                Ok(d)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Number of queued, undelivered messages.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Dropping the receive handle is process exit: deregister so peers
        // see Unreachable rather than silently filling a dead queue.
        self.fabric.kill(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn two_node_fabric() -> Fabric {
        Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()))
    }

    #[test]
    fn send_and_receive() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let t = a.send_to(b.id(), 7, Bytes::from_static(b"hello")).unwrap();
        assert!(t > SimTime::ZERO);
        let d = b.recv().unwrap();
        assert_eq!(d.src, a.id());
        assert_eq!(d.tag, 7);
        assert_eq!(&d.payload[..], b"hello");
        assert_eq!(d.wire_time, t);
    }

    #[test]
    fn per_sender_fifo_order() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        for i in 0..100u64 {
            a.send_to(b.id(), i, Bytes::new()).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(b.recv().unwrap().tag, i);
        }
    }

    #[test]
    fn unknown_destination_unreachable() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let ghost = EndpointId(9999);
        assert_eq!(
            a.send_to(ghost, 0, Bytes::new()),
            Err(NetError::Unreachable { dst: ghost })
        );
    }

    #[test]
    fn killed_endpoint_becomes_unreachable_and_sender_dead() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        fabric.kill(b.id());
        assert!(matches!(
            a.send_to(b.id(), 0, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
        fabric.kill(a.id());
        assert!(matches!(
            fabric.send(a.id(), b.id(), 0, Bytes::new()),
            Err(NetError::SenderDead { .. })
        ));
    }

    #[test]
    fn queued_messages_survive_kill_until_drained() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send_to(b.id(), 1, Bytes::from_static(b"x")).unwrap();
        a.send_to(b.id(), 2, Bytes::from_static(b"y")).unwrap();
        fabric.kill(b.id());
        assert_eq!(b.recv().unwrap().tag, 1);
        assert_eq!(b.recv().unwrap().tag, 2);
        assert_eq!(b.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn try_recv_and_timeout() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        assert_eq!(b.try_recv().err(), Some(NetError::Empty));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)).err(),
            Some(NetError::Timeout)
        );
        a.send_to(b.id(), 5, Bytes::new()).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().tag, 5);
    }

    #[test]
    fn drop_deregisters() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b_id = {
            let b = fabric.register(NodeId(1));
            assert!(fabric.is_alive(b.id()));
            b.id()
        };
        assert!(!fabric.is_alive(b_id));
        assert!(matches!(
            a.send_to(b_id, 0, Bytes::new()),
            Err(NetError::Unreachable { .. })
        ));
    }

    #[test]
    fn stats_accounting() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        a.send_to(b.id(), 0, Bytes::from_static(b"1234")).unwrap();
        a.send_to(b.id(), 0, Bytes::from_static(b"56")).unwrap();
        b.recv().unwrap();
        let stats = fabric.stats();
        assert_eq!(stats.total_msgs, 2);
        assert_eq!(stats.total_bytes, 6);
        let sa = stats.endpoint(a.id());
        assert_eq!(sa.msgs_sent, 2);
        assert_eq!(sa.bytes_sent, 6);
        assert!(sa.sim_time_sent > SimTime::ZERO);
        let sb = stats.endpoint(b.id());
        assert_eq!(sb.msgs_received, 1);
        assert_eq!(sb.bytes_received, 4);
        fabric.reset_stats();
        assert_eq!(fabric.stats().total_msgs, 0);
    }

    #[test]
    fn cross_thread_messaging() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let a_id = a.id();
        let b_id = b.id();
        let fabric2 = fabric.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u64 {
                fabric2
                    .send(a_id, b_id, i, Bytes::from(vec![0u8; 64]))
                    .unwrap();
            }
        });
        let mut seen = 0u64;
        while seen < 1000 {
            let d = b.recv().unwrap();
            assert_eq!(d.tag, seen);
            seen += 1;
        }
        producer.join().unwrap();
        drop(a);
    }

    #[test]
    fn link_meter_counts_and_releases() {
        let meter = LinkMeter::new();
        assert_eq!(meter.inflight(NodeId(0), NodeId(1)), 0);
        let s1 = meter.begin(NodeId(0), NodeId(1));
        let s2 = meter.begin(NodeId(1), NodeId(0)); // same unordered link
        assert_eq!(meter.inflight(NodeId(0), NodeId(1)), 2);
        assert_eq!(meter.inflight(NodeId(1), NodeId(0)), 2);
        drop(s1);
        assert_eq!(meter.inflight(NodeId(0), NodeId(1)), 1);
        drop(s2);
        assert_eq!(meter.inflight(NodeId(0), NodeId(1)), 0);
        // Other links are unaffected.
        let _s3 = meter.begin(NodeId(2), NodeId(3));
        assert_eq!(meter.inflight(NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn netview_prices_by_inflight_share() {
        let topo = Topology::uniform(2, LinkSpec::gigabit_ethernet());
        let meter = LinkMeter::new();
        let view = NetView::contended(&topo, &meter);
        let base = view.cost(NodeId(0), NodeId(1), 1 << 20);
        assert_eq!(base, topo.cost(NodeId(0), NodeId(1), 1 << 20));
        let _a = view.begin_transfer(NodeId(0), NodeId(1));
        let _b = view.begin_transfer(NodeId(0), NodeId(1));
        let contended = view.cost(NodeId(0), NodeId(1), 1 << 20);
        assert_eq!(contended, topo.contended_cost(NodeId(0), NodeId(1), 1 << 20, 2));
        assert!(contended > base);
        // Uncontended views never meter.
        let flat = NetView::uncontended(&topo);
        assert!(flat.begin_transfer(NodeId(0), NodeId(1)).is_none());
        assert_eq!(flat.cost(NodeId(0), NodeId(1), 1 << 20), base);
    }

    #[test]
    fn sends_slow_down_under_bulk_transfers() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        let payload = Bytes::from(vec![0u8; 65536]);
        let quiet = a.send_to(b.id(), 0, payload.clone()).unwrap();
        let _slot = fabric.link_meter().begin(NodeId(0), NodeId(1));
        let busy = a.send_to(b.id(), 0, payload).unwrap();
        assert!(busy > quiet);
    }

    #[test]
    fn node_of_and_is_alive() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(1));
        assert_eq!(fabric.node_of(a.id()), Some(NodeId(1)));
        assert!(fabric.is_alive(a.id()));
        assert_eq!(fabric.node_of(EndpointId(424242)), None);
    }

    #[test]
    #[should_panic(expected = "not in the topology")]
    fn registering_on_unknown_node_panics() {
        let fabric = two_node_fabric();
        let _ = fabric.register(NodeId(7));
    }

    #[test]
    fn loopback_send_is_cheaper() {
        let fabric = two_node_fabric();
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(0));
        let c = fabric.register(NodeId(1));
        let payload = Bytes::from(vec![0u8; 65536]);
        let local = a.send_to(b.id(), 0, payload.clone()).unwrap();
        let remote = a.send_to(c.id(), 0, payload).unwrap();
        assert!(local < remote);
    }
}
