//! Fabric error type.

use std::fmt;

use crate::fabric::EndpointId;

/// Errors surfaced by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination endpoint was never registered or has been killed.
    Unreachable {
        /// Destination that could not be reached.
        dst: EndpointId,
    },
    /// The sending endpoint has been killed (a dead process cannot send).
    SenderDead {
        /// The dead source endpoint.
        src: EndpointId,
    },
    /// A blocking receive found the endpoint closed with no queued messages.
    Disconnected,
    /// A timed receive expired.
    Timeout,
    /// A non-blocking receive found nothing queued.
    Empty,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable { dst } => write!(f, "endpoint {dst:?} is unreachable"),
            NetError::SenderDead { src } => write!(f, "sending endpoint {src:?} is dead"),
            NetError::Disconnected => write!(f, "endpoint closed and queue drained"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Empty => write!(f, "no message queued"),
        }
    }
}

impl std::error::Error for NetError {}
