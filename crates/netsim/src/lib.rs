//! Simulated cluster fabric.
//!
//! The paper's testbed is a Linux cluster of dual-Opteron nodes on gigabit
//! ethernet / InfiniBand. We have no cluster, so this crate provides the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * a [`Topology`] of named nodes joined by links with
//!   configurable latency and bandwidth,
//! * a [`Fabric`] giving *real* (thread-to-thread) reliable,
//!   per-sender-ordered message delivery between registered endpoints, and
//! * a virtual-time **cost model** ([`SimTime`]): every
//!   delivery reports the simulated wire time `latency + bytes/bandwidth`,
//!   so benchmarks can report cluster-shaped numbers while tests run at
//!   memory speed.
//!
//! Failure injection ([`Fabric::kill`]) models process
//! death: senders observe peer-unreachable errors and receivers' queues
//! drain then disconnect — the raw material for restart experiments.
//!
//! Everything higher up (OOB daemon traffic in ORTE, the PML point-to-point
//! layer in OMPI, FILEM file movement costs) runs over this one fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fabric;
pub mod stats;
pub mod time;
pub mod topology;

pub use error::NetError;
pub use fabric::{Delivery, Endpoint, EndpointId, Fabric, LinkMeter, LinkSlot, NetView};
pub use stats::{EndpointStats, FabricStats};
pub use time::SimTime;
pub use topology::{LinkSpec, NodeId, Topology};
