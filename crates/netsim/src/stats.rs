//! Traffic accounting.
//!
//! The CRCP bookmark-exchange protocol needs per-peer sent/received message
//! counts; the benchmarks need bytes-on-the-wire and simulated wire time.
//! The fabric maintains both per endpoint and in aggregate.

use std::collections::HashMap;

use crate::fabric::EndpointId;
use crate::time::SimTime;

/// Counters for one endpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Messages successfully sent.
    pub msgs_sent: u64,
    /// Messages delivered out of the receive queue.
    pub msgs_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Total simulated wire time of everything sent from this endpoint.
    pub sim_time_sent: SimTime,
}

/// Aggregate fabric counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Per-endpoint counters.
    pub endpoints: HashMap<EndpointId, EndpointStats>,
    /// Total messages moved through the fabric.
    pub total_msgs: u64,
    /// Total payload bytes moved through the fabric.
    pub total_bytes: u64,
}

impl FabricStats {
    /// Counters for `ep` (zeroes when the endpoint moved no traffic).
    pub fn endpoint(&self, ep: EndpointId) -> EndpointStats {
        self.endpoints.get(&ep).cloned().unwrap_or_default()
    }
}
