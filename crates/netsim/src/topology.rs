//! Cluster topology and the link cost model.

use std::collections::HashMap;
use std::fmt;

use crate::time::SimTime;

/// Identifier of a node (machine) in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:02}", self.0)
    }
}

/// Latency/bandwidth parameters of a link (or of the loopback path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way message latency.
    pub latency: SimTime,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl LinkSpec {
    /// Gigabit-ethernet-like defaults (~50us latency, ~118 MB/s): the
    /// interconnect class the paper's cluster used.
    pub fn gigabit_ethernet() -> Self {
        LinkSpec {
            latency: SimTime::from_micros(50),
            bandwidth_bytes_per_sec: 118 * 1024 * 1024,
        }
    }

    /// InfiniBand-like defaults (~4us latency, ~900 MB/s).
    pub fn infiniband() -> Self {
        LinkSpec {
            latency: SimTime::from_micros(4),
            bandwidth_bytes_per_sec: 900 * 1024 * 1024,
        }
    }

    /// Shared-memory loopback defaults (~500ns, ~4 GB/s).
    pub fn loopback() -> Self {
        LinkSpec {
            latency: SimTime::from_nanos(500),
            bandwidth_bytes_per_sec: 4 * 1024 * 1024 * 1024,
        }
    }

    /// Simulated wire time for a message of `bytes` over this link.
    pub fn transfer_cost(&self, bytes: usize) -> SimTime {
        self.contended_transfer_cost(bytes, 1)
    }

    /// Simulated wire time for a message of `bytes` when `share` transfers
    /// (including this one) occupy the link concurrently: each sees ~1/share
    /// of the bandwidth, so serialization time scales by `share`. Latency is
    /// propagation delay and is not shared. `share == 0` is treated as 1.
    pub fn contended_transfer_cost(&self, bytes: usize, share: u32) -> SimTime {
        let serialization_ns = if self.bandwidth_bytes_per_sec == 0 {
            0
        } else {
            (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec as u128) as u64
        };
        self.latency + SimTime::from_nanos(serialization_ns) * u64::from(share.max(1))
    }
}

/// Description of a simulated cluster: node names plus link parameters.
///
/// # Examples
///
/// ```
/// use netsim::{LinkSpec, NodeId, Topology};
///
/// let topo = Topology::uniform(4, LinkSpec::gigabit_ethernet());
/// assert_eq!(topo.hostname(NodeId(2)), "node02");
/// // Intra-node traffic is cheaper than crossing the wire.
/// assert!(topo.cost(NodeId(0), NodeId(0), 4096) < topo.cost(NodeId(0), NodeId(1), 4096));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    hostnames: Vec<String>,
    default_link: LinkSpec,
    loopback: LinkSpec,
    /// Per-pair overrides, keyed with the smaller node id first.
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
}

impl Topology {
    /// A cluster of `nodes` identical machines (`node00`, `node01`, ...)
    /// joined by `default_link`.
    pub fn uniform(nodes: u32, default_link: LinkSpec) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Topology {
            hostnames: (0..nodes).map(|i| format!("node{i:02}")).collect(),
            default_link,
            loopback: LinkSpec::loopback(),
            overrides: HashMap::new(),
        }
    }

    /// Override the loopback (intra-node) parameters.
    pub fn with_loopback(mut self, loopback: LinkSpec) -> Self {
        self.loopback = loopback;
        self
    }

    /// Override one node pair's link.
    pub fn with_link(mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> Self {
        assert!(a != b, "use with_loopback for intra-node paths");
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.overrides.insert(key, spec);
        self
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.hostnames.len()
    }

    /// True when the cluster has no nodes (never happens via constructors).
    pub fn is_empty(&self) -> bool {
        self.hostnames.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.hostnames.len() as u32).map(NodeId)
    }

    /// Hostname of `node`.
    pub fn hostname(&self, node: NodeId) -> &str {
        &self.hostnames[node.0 as usize]
    }

    /// Link parameters between two nodes (loopback when equal).
    pub fn link(&self, a: NodeId, b: NodeId) -> LinkSpec {
        if a == b {
            return self.loopback;
        }
        let key = if a.0 < b.0 { (a, b) } else { (b, a) };
        self.overrides
            .get(&key)
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Simulated cost of moving `bytes` from `a` to `b`.
    pub fn cost(&self, a: NodeId, b: NodeId, bytes: usize) -> SimTime {
        self.link(a, b).transfer_cost(bytes)
    }

    /// Simulated cost of moving `bytes` from `a` to `b` while `share`
    /// transfers (including this one) contend for the link.
    pub fn contended_cost(&self, a: NodeId, b: NodeId, bytes: usize, share: u32) -> SimTime {
        self.link(a, b).contended_transfer_cost(bytes, share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_basics() {
        let t = Topology::uniform(4, LinkSpec::gigabit_ethernet());
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.hostname(NodeId(0)), "node00");
        assert_eq!(t.hostname(NodeId(3)), "node03");
        assert_eq!(t.nodes().count(), 4);
    }

    #[test]
    fn cost_model_latency_plus_serialization() {
        let link = LinkSpec {
            latency: SimTime::from_micros(10),
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 GB/s => 1 ns/byte
        };
        assert_eq!(link.transfer_cost(0), SimTime::from_micros(10));
        assert_eq!(
            link.transfer_cost(1000),
            SimTime::from_micros(10) + SimTime::from_nanos(1000)
        );
    }

    #[test]
    fn zero_bandwidth_means_latency_only() {
        let link = LinkSpec {
            latency: SimTime::from_micros(1),
            bandwidth_bytes_per_sec: 0,
        };
        assert_eq!(link.transfer_cost(1 << 20), SimTime::from_micros(1));
    }

    #[test]
    fn loopback_cheaper_than_wire() {
        let t = Topology::uniform(2, LinkSpec::gigabit_ethernet());
        let local = t.cost(NodeId(0), NodeId(0), 4096);
        let remote = t.cost(NodeId(0), NodeId(1), 4096);
        assert!(local < remote);
    }

    #[test]
    fn per_pair_override_is_symmetric() {
        let fast = LinkSpec::infiniband();
        let t = Topology::uniform(3, LinkSpec::gigabit_ethernet()).with_link(
            NodeId(2),
            NodeId(0),
            fast,
        );
        assert_eq!(t.link(NodeId(0), NodeId(2)), fast);
        assert_eq!(t.link(NodeId(2), NodeId(0)), fast);
        assert_eq!(t.link(NodeId(0), NodeId(1)), LinkSpec::gigabit_ethernet());
    }

    #[test]
    fn contended_cost_scales_serialization_only() {
        let link = LinkSpec {
            latency: SimTime::from_micros(10),
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 ns/byte
        };
        for k in 1..=8u32 {
            assert_eq!(
                link.contended_transfer_cost(1000, k),
                SimTime::from_micros(10) + SimTime::from_nanos(1000) * u64::from(k)
            );
        }
        // share 0 behaves like an uncontended link
        assert_eq!(
            link.contended_transfer_cost(1000, 0),
            link.transfer_cost(1000)
        );
    }

    #[test]
    fn uncontended_share_matches_transfer_cost() {
        let t = Topology::uniform(2, LinkSpec::gigabit_ethernet());
        assert_eq!(
            t.contended_cost(NodeId(0), NodeId(1), 1 << 20, 1),
            t.cost(NodeId(0), NodeId(1), 1 << 20)
        );
    }

    #[test]
    fn big_transfers_do_not_overflow() {
        let link = LinkSpec::gigabit_ethernet();
        let cost = link.transfer_cost(usize::MAX / 2);
        assert!(cost.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::uniform(0, LinkSpec::gigabit_ethernet());
    }

    #[test]
    fn infiniband_faster_than_ethernet() {
        let ib = LinkSpec::infiniband().transfer_cost(1 << 16);
        let eth = LinkSpec::gigabit_ethernet().transfer_cost(1 << 16);
        assert!(ib < eth);
    }
}
