//! MPI-layer error type.

use std::fmt;

use cr_core::CrError;

/// Errors surfaced to MPI applications.
#[derive(Debug, Clone)]
pub enum MpiError {
    /// A peer process or its channel is gone.
    PeerLost {
        /// Description of the failure.
        detail: String,
    },
    /// A payload failed to encode/decode.
    Codec(codec::Error),
    /// Invalid arguments (rank out of range, tag out of range, ...).
    Invalid {
        /// What was wrong.
        detail: String,
    },
    /// A checkpoint/restart operation failed.
    Cr(CrError),
    /// Replay after restart diverged from the recorded execution — the
    /// application's step function is not deterministic.
    ReplayDiverged {
        /// Human-readable divergence description.
        detail: String,
    },
    /// Operation on an unknown or already-completed request handle.
    BadRequest {
        /// The offending request id.
        request: u64,
    },
    /// The job is terminating: a blocked operation was cooperatively
    /// unwound. Not an application error — the run loop converts it into
    /// a terminated outcome.
    Terminating,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::PeerLost { detail } => write!(f, "peer lost: {detail}"),
            MpiError::Codec(e) => write!(f, "payload codec error: {e}"),
            MpiError::Invalid { detail } => write!(f, "invalid argument: {detail}"),
            MpiError::Cr(e) => write!(f, "checkpoint/restart error: {e}"),
            MpiError::ReplayDiverged { detail } => write!(
                f,
                "replay diverged (application step is not deterministic): {detail}"
            ),
            MpiError::BadRequest { request } => write!(f, "bad request handle {request}"),
            MpiError::Terminating => write!(f, "job is terminating"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<codec::Error> for MpiError {
    fn from(e: codec::Error) -> Self {
        MpiError::Codec(e)
    }
}

impl From<CrError> for MpiError {
    fn from(e: CrError) -> Self {
        MpiError::Cr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MpiError = codec::Error::TrailingBytes { remaining: 1 }.into();
        assert!(e.to_string().contains("codec"));
        let e: MpiError = CrError::protocol("x").into();
        assert!(e.to_string().contains("checkpoint/restart"));
        let e = MpiError::ReplayDiverged {
            detail: "expected send".into(),
        };
        assert!(e.to_string().contains("deterministic"));
    }
}
