//! CRCP — the Checkpoint/Restart Coordination Protocol framework.
//!
//! A local checkpointer cannot capture the state of communication
//! channels, so a distributed protocol must bring the channels into a
//! known state before the per-process images are taken (paper §5.3).
//! CRCP components are interposed on the PML (the wrapper design of
//! §6.3) and receive checkpoint notification *before any other MPI
//! subsystem*.
//!
//! Components:
//!
//! * **`coord`** — the LAM/MPI-style coordinated protocol the paper
//!   implements: a **bookmark exchange**. At checkpoint time every pair of
//!   processes exchanges per-peer sent-message counts; each receiver then
//!   drains its channels until its received counts match the senders'
//!   bookmarks, buffering drained-but-unmatched messages into the process
//!   image. Operates on whole messages (the paper's refinement over
//!   LAM/MPI's byte counts).
//! * **`logger`** — pessimistic sender-based message logging (the paper's
//!   future-work extension): every outgoing payload is retained by the
//!   sender; nothing is drained at checkpoint time (cheap checkpoints),
//!   and at restart the peers exchange received-counts and senders resend
//!   whatever was in flight. Sequence numbers make resends idempotent.
//!   Checkpoints double as garbage-collection points for the log.
//! * **`none`** — passthrough. With this component installed the full
//!   interposition machinery runs but does nothing: the configuration the
//!   paper benchmarks against the infrastructure-disabled build (§7).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use mca::{Framework, McaParams};

use cr_core::{CrError, FtEvent, FtEventState, Tracer};

use crate::frame::{AppFrame, CrcpMsg};
use crate::pml::{PmlShared, PmlState};

/// How long coordination waits for peers before declaring them lost.
const COORD_TIMEOUT: Duration = Duration::from_secs(60);

/// A checkpoint/restart coordination protocol.
pub trait CrcpComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Interposition hook: called (with the PML state locked) before each
    /// application message is sent.
    #[allow(clippy::too_many_arguments)] // mirrors the PML send signature
    fn on_send(
        &self,
        _st: &mut PmlState,
        _me: u32,
        _dst: u32,
        _ctx: u32,
        _tag: u32,
        _seq: u64,
        _payload: &[u8],
    ) {
    }

    /// Interposition hook: called (with the PML state locked) when a
    /// receive operation consumes a message.
    fn on_recv(&self, _st: &mut PmlState, _frame: &AppFrame) {}

    /// Bring the channels into a checkpointable state. Runs on the
    /// checkpoint notification thread with the application thread parked;
    /// every rank runs this concurrently.
    ///
    /// Invariant (model-checked by `cr-model quiesce`, see
    /// `crates/model/src/quiesce.rs` and DESIGN.md §2.4): with the
    /// `Quiesced` exit barrier in place, no rank's post-coordination send
    /// can be counted in a peer's still-open drain — deleting the barrier
    /// makes the checker reproduce the PR 3 bookmark-overrun race in an
    /// 8-step minimal trace.
    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError>;

    /// React to the post-checkpoint state (continue in place, restarted
    /// image, or failed checkpoint).
    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError>;

    /// Wire up the job's global-commit watermark (highest globally
    /// committed interval + 1; 0 = nothing committed yet). Components
    /// that garbage-collect replay state must key the GC off this rather
    /// than off `Continue`: the INC chain delivers `Continue` at *local*
    /// commit, and a checkpoint that quiesces but never reaches global
    /// commit (a rank dies mid-interval) must leave survivor logs intact
    /// or a later partial restart replays with a sequence gap. No-op for
    /// components without replay state.
    fn set_commit_watermark(&self, _watermark: Arc<AtomicU64>) {}
}

/// Which CRCP control message a collection phase expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollectKind {
    /// Sent-count bookmarks (coordinated protocol, phase one).
    Bookmark,
    /// Received-count exchanges (logger GC / restart negotiation).
    Have,
    /// Quiesce acknowledgements (coordinated protocol, exit barrier).
    Quiesced,
}

/// Collect one control message of the expected kind from every peer while
/// pumping the wire, returning the per-peer values (zero for `Quiesced`,
/// which carries no count).
///
/// The phases of one coordination round overlap across ranks: a fast peer
/// that finished draining sends its `Quiesced` while this rank is still
/// collecting `Bookmark`s, so out-of-phase messages are expected here.
/// They are set aside and re-queued (in arrival order) for the phase that
/// wants them, rather than treated as protocol errors.
fn collect_counts(pml: &PmlShared, kind: CollectKind) -> Result<HashMap<u32, u64>, CrError> {
    let me = pml.me();
    let n = pml.nprocs();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut deferred: Vec<CrcpMsg> = Vec::new();
    let deadline = Instant::now() + COORD_TIMEOUT;
    let outcome = loop {
        pml.with_state(|st| {
            while let Some(msg) = st.crcp_inbox.pop_front() {
                match (msg, kind) {
                    (CrcpMsg::Bookmark { from, sent }, CollectKind::Bookmark) => {
                        counts.insert(from, sent);
                    }
                    (CrcpMsg::Have { from, have }, CollectKind::Have) => {
                        counts.insert(from, have);
                    }
                    (CrcpMsg::Quiesced { from }, CollectKind::Quiesced) => {
                        counts.insert(from, 0);
                    }
                    (other, _) => deferred.push(other),
                }
            }
        });
        if counts.len() == (n - 1) as usize {
            break Ok(counts);
        }
        if Instant::now() > deadline {
            let missing: Vec<u32> = (0..n)
                .filter(|q| *q != me && !counts.contains_key(q))
                .collect();
            break Err(CrError::PeerLost {
                detail: format!("no CRCP counts from ranks {missing:?}"),
            });
        }
        pml.poll_wire_once(Duration::from_millis(1))
            .map_err(|e| CrError::protocol(e.to_string()))?;
    };
    // Hand the out-of-phase messages back, oldest at the front, so the
    // next collection phase finds them in arrival order.
    if !deferred.is_empty() {
        pml.with_state(|st| {
            for msg in deferred.drain(..).rev() {
                st.crcp_inbox.push_front(msg);
            }
        });
    }
    outcome
}

// ---------------------------------------------------------------------------
// coord
// ---------------------------------------------------------------------------

/// Coordinated bookmark-exchange protocol.
pub struct CoordCrcp {
    tracer: Tracer,
    /// Retain sent payloads for partial-restart replay
    /// (`crcp_msg_log_enabled`).
    msg_log: bool,
    /// Message-log cap in bytes (`crcp_msg_log_cap_kb`); sends past the
    /// cap are not logged and mark the log overflowed.
    msg_log_cap: u64,
    /// The job's global-commit watermark, when running under a real
    /// SNAPC (set once at bring-up). Absent in standalone use, where the
    /// caller's `Continue` is taken as the commit signal.
    commit_watermark: OnceLock<Arc<AtomicU64>>,
}

impl CoordCrcp {
    /// Build with a tracer for phase events (message log disabled).
    pub fn new(tracer: Tracer) -> Self {
        CoordCrcp {
            tracer,
            msg_log: false,
            msg_log_cap: 0,
            commit_watermark: OnceLock::new(),
        }
    }

    /// Build from MCA parameters (`crcp_msg_log_enabled`,
    /// `crcp_msg_log_cap_kb`).
    pub fn from_params(tracer: Tracer, params: &McaParams) -> Self {
        let msg_log = params.get_bool_or("crcp_msg_log_enabled", false).unwrap_or(false);
        let cap_kb = params.get_parsed_or("crcp_msg_log_cap_kb", 256u64).unwrap_or(256);
        CoordCrcp {
            tracer,
            msg_log,
            msg_log_cap: cap_kb.saturating_mul(1024),
            commit_watermark: OnceLock::new(),
        }
    }

    /// Drop message-log entries below `mark` and record the GC.
    fn gc_to(&self, st: &mut PmlState, me: u32, mark: u64) {
        let mark = (mark as usize).min(st.msg_log.len());
        if mark == 0 {
            return;
        }
        let freed: u64 = st
            .msg_log
            .iter()
            .take(mark)
            .map(|l| l.payload.len() as u64)
            .sum();
        st.msg_log.drain(..mark);
        st.msg_log_bytes = st.msg_log_bytes.saturating_sub(freed);
        for m in &mut st.msg_log_marks {
            m.mark = m.mark.saturating_sub(mark as u64);
        }
        self.tracer.record(
            "crcp.replay.gc",
            &format!("rank {me}: dropped {mark} logged sends ({freed} B) at global commit"),
        );
    }

    /// Drop every quiesce mark whose interval the job has published as
    /// globally committed, draining the log to the highest such mark.
    /// Marks of checkpoints that failed before commit linger harmlessly
    /// until a later interval commits past them (their marks are bounded
    /// by the later one's). No-op without a watermark.
    fn gc_committed(&self, st: &mut PmlState, me: u32) {
        let Some(watermark) = self.commit_watermark.get() else {
            return;
        };
        if st.msg_log_marks.is_empty() {
            return;
        }
        let committed = watermark.load(Ordering::SeqCst);
        let mut drain_to = 0u64;
        st.msg_log_marks.retain(|m| {
            if m.interval < committed {
                drain_to = drain_to.max(m.mark);
                false
            } else {
                true
            }
        });
        if drain_to > 0 {
            self.gc_to(st, me, drain_to);
        }
    }
}

impl CrcpComponent for CoordCrcp {
    fn name(&self) -> &'static str {
        "coord"
    }

    fn on_send(
        &self,
        st: &mut PmlState,
        me: u32,
        dst: u32,
        ctx: u32,
        tag: u32,
        seq: u64,
        payload: &[u8],
    ) {
        // The partial-restart tax: retain the payload so a survivor can
        // replay it to a restarted peer. Dropped below the quiesce mark
        // once the marked interval reaches global commit.
        if !self.msg_log {
            return;
        }
        self.gc_committed(st, me);
        let add = payload.len() as u64;
        if st.msg_log_bytes.saturating_add(add) > self.msg_log_cap {
            st.msg_log_overflow = true;
            return;
        }
        st.msg_log.push(crate::pml::LoggedSend {
            dst,
            ctx,
            tag,
            seq,
            payload: payload.to_vec(),
        });
        st.msg_log_bytes += add;
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        self.tracer
            .record("ompi.crcp.coordinate", &format!("rank {me} bookmark exchange"));

        // Exchange bookmarks.
        for q in 0..n {
            if q == me {
                continue;
            }
            let sent = pml.with_state(|st| st.sent_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Bookmark { from: me, sent })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        let bookmarks = collect_counts(pml, CollectKind::Bookmark)?;

        // Drain until every peer's sends have been received into the PML.
        let deadline = Instant::now() + COORD_TIMEOUT;
        loop {
            let drained = pml.with_state(|st| {
                bookmarks
                    .iter()
                    .all(|(q, sent)| st.recv_counts[*q as usize] >= *sent)
            });
            if drained {
                break;
            }
            if Instant::now() > deadline {
                return Err(CrError::PeerLost {
                    detail: "channel drain did not converge".into(),
                });
            }
            pml.poll_wire_once(Duration::from_millis(1))
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }

        // The channels are now quiesced: received exactly what was sent.
        pml.with_state(|st| {
            for (q, sent) in &bookmarks {
                let got = st.recv_counts[*q as usize];
                if got != *sent {
                    return Err(CrError::protocol(format!(
                        "bookmark overrun from rank {q}: sent {sent}, received {got}"
                    )));
                }
            }
            Ok(())
        })?;

        // Exit barrier. Without it a fast rank returns, completes its local
        // checkpoint, resumes the application, and sends *new* traffic while
        // a slower peer is still draining — the new frame lands in the slow
        // peer's drain window and trips its bookmark verification ("bookmark
        // overrun: sent N, received N+1", the component_matrix flake).
        for q in 0..n {
            if q == me {
                continue;
            }
            pml.send_crcp(q, &CrcpMsg::Quiesced { from: me })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        collect_counts(pml, CollectKind::Quiesced)?;
        self.tracer
            .record("ompi.crcp.quiesced", &format!("rank {me}"));
        // Mark the log at the quiesce point: everything below the mark
        // belongs to the interval being captured and becomes garbage once
        // that interval reaches global commit. The INC handle stashes
        // SNAPC's interval number before the chain runs; standalone
        // callers (no SNAPC) have none, and their single anonymous mark
        // commits on the caller's `Continue`.
        if self.msg_log {
            pml.with_state(|st| {
                self.gc_committed(st, me);
                let len = st.msg_log.len() as u64;
                // The quiesce closes an overflow window: fold the flag
                // into the mark (where the commit-watermark GC can retire
                // it once the interval commits) and start a fresh window.
                let overflow = std::mem::take(&mut st.msg_log_overflow);
                match st.ckpt_interval {
                    Some(interval) => {
                        let prior = st
                            .msg_log_marks
                            .iter()
                            .any(|m| m.interval == interval && m.overflow);
                        st.msg_log_marks.retain(|m| m.interval != interval);
                        st.msg_log_marks.push(crate::pml::MsgLogMark {
                            interval,
                            mark: len,
                            overflow: overflow || prior,
                        });
                    }
                    None => {
                        let prior = st.msg_log_marks.iter().any(|m| m.overflow);
                        st.msg_log_marks.clear();
                        st.msg_log_marks.push(crate::pml::MsgLogMark {
                            interval: u64::MAX,
                            mark: len,
                            overflow: overflow || prior,
                        });
                    }
                }
            });
        }
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        let me = pml.me();
        self.tracer
            .record("ompi.crcp.resume", &format!("rank {me} {state}"));
        // The INC chain delivers `Continue` at *local* commit — global
        // commit lands later (and, for a checkpoint whose rank dies
        // mid-interval, never). With a watermark wired up the GC keys off
        // that instead; draining here would strand a later partial
        // restart (restored from the last *committed* interval) without
        // the frames its survivors must replay. Standalone components
        // keep the caller-driven contract: `Continue` commits the mark.
        if self.msg_log && state == FtEventState::Continue {
            pml.with_state(|st| {
                if self.commit_watermark.get().is_some() {
                    self.gc_committed(st, me);
                } else {
                    let drain_to = st.msg_log_marks.iter().map(|m| m.mark).max().unwrap_or(0);
                    st.msg_log_marks.clear();
                    self.gc_to(st, me, drain_to);
                }
            });
        }
        Ok(())
    }

    fn set_commit_watermark(&self, watermark: Arc<AtomicU64>) {
        let _ = self.commit_watermark.set(watermark);
    }
}

/// Partial-restart rejoin handshake, run by a restarted rank after its
/// image is restored and before the application step re-enters: announce
/// this rank's replacement endpoint to every survivor, then block until
/// each has replayed its logged backlog and fenced it with `ReplayDone`.
/// FIFO channel order guarantees the fence arrives after every replayed
/// frame, so once all fences are in the channel is caught up.
pub fn rejoin_replay(
    pml: &PmlShared,
    rejoining: &BTreeSet<u32>,
    tracer: &Tracer,
) -> Result<(), CrError> {
    let me = pml.me();
    let n = pml.nprocs();
    let survivors: Vec<u32> = (0..n)
        .filter(|q| *q != me && !rejoining.contains(q))
        .collect();
    tracer.record(
        "crcp.replay.begin",
        &format!(
            "rank {me}: announcing endpoint {} to {} survivors",
            pml.endpoint_id(),
            survivors.len()
        ),
    );
    for q in &survivors {
        pml.send_crcp(
            *q,
            &CrcpMsg::ReplayBegin {
                from: me,
                endpoint: pml.endpoint_id().0,
            },
        )
        .map_err(|e| CrError::protocol(e.to_string()))?;
    }
    let mut fenced: BTreeSet<u32> = BTreeSet::new();
    let mut deferred: Vec<CrcpMsg> = Vec::new();
    let deadline = Instant::now() + COORD_TIMEOUT;
    while fenced.len() < survivors.len() {
        pml.with_state(|st| {
            while let Some(msg) = st.crcp_inbox.pop_front() {
                match msg {
                    CrcpMsg::ReplayDone { from } => {
                        fenced.insert(from);
                    }
                    other => deferred.push(other),
                }
            }
        });
        if fenced.len() == survivors.len() {
            break;
        }
        if Instant::now() > deadline {
            let missing: Vec<u32> = survivors
                .iter()
                .copied()
                .filter(|q| !fenced.contains(q))
                .collect();
            return Err(CrError::PeerLost {
                detail: format!("no ReplayDone fence from survivors {missing:?}"),
            });
        }
        pml.poll_wire_once(Duration::from_millis(1))
            .map_err(|e| CrError::protocol(e.to_string()))?;
    }
    if !deferred.is_empty() {
        pml.with_state(|st| {
            for msg in deferred.drain(..).rev() {
                st.crcp_inbox.push_front(msg);
            }
        });
    }
    tracer.record(
        "crcp.replay.done",
        &format!("rank {me}: {} survivor channels fenced", survivors.len()),
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// logger
// ---------------------------------------------------------------------------

/// Pessimistic sender-based message logging.
pub struct LoggerCrcp {
    tracer: Tracer,
}

impl LoggerCrcp {
    /// Build with a tracer for phase events.
    pub fn new(tracer: Tracer) -> Self {
        LoggerCrcp { tracer }
    }

    /// Exchange received-counts with every peer.
    fn exchange_have(&self, pml: &PmlShared) -> Result<HashMap<u32, u64>, CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        for q in 0..n {
            if q == me {
                continue;
            }
            let have = pml.with_state(|st| st.recv_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Have { from: me, have })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        collect_counts(pml, CollectKind::Have)
    }
}

impl CrcpComponent for LoggerCrcp {
    fn name(&self) -> &'static str {
        "logger"
    }

    fn on_send(
        &self,
        st: &mut PmlState,
        _me: u32,
        dst: u32,
        ctx: u32,
        tag: u32,
        seq: u64,
        payload: &[u8],
    ) {
        // The failure-free tax of pessimistic logging: retain the payload.
        st.sender_log.push(crate::pml::LoggedSend {
            dst,
            ctx,
            tag,
            seq,
            payload: payload.to_vec(),
        });
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        // No channel drain. Checkpoints double as garbage collection: learn
        // what peers have received and prune the log below those counts.
        self.tracer.record(
            "ompi.crcp.logger.gc",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        pml.with_state(|st| {
            st.sender_log
                .retain(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0));
        });
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        if state != FtEventState::Restart {
            return Ok(());
        }
        // In-flight messages died with the old incarnation: learn what each
        // peer actually received and resend the tail of the log. Sequence
        // numbers de-duplicate anything that did arrive.
        self.tracer.record(
            "ompi.crcp.logger.replay",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        let to_resend: Vec<crate::pml::LoggedSend> = pml.with_state(|st| {
            st.sender_log
                .iter()
                .filter(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0))
                .cloned()
                .collect()
        });
        for entry in &to_resend {
            pml.resend_logged(entry)
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        self.tracer.record(
            "ompi.crcp.logger.resent",
            &format!("rank {}: {} messages", pml.me(), to_resend.len()),
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// none
// ---------------------------------------------------------------------------

/// Passthrough protocol: full interposition, no behaviour. Used to measure
/// the wrapper overhead (experiments E1/E2).
pub struct NoneCrcp;

impl CrcpComponent for NoneCrcp {
    fn name(&self) -> &'static str {
        "none"
    }

    fn coordinate(&self, _pml: &PmlShared) -> Result<(), CrError> {
        // No coordination: with this component a checkpoint captures
        // process images without quiescing channels. Restartable only if
        // nothing was in flight; intended for overhead measurement.
        Ok(())
    }

    fn resume(&self, _pml: &PmlShared, _state: FtEventState) -> Result<(), CrError> {
        Ok(())
    }
}

/// Assemble the CRCP framework (`coord` is the default, as in the paper's
/// first implementation).
pub fn crcp_framework(tracer: Tracer) -> Framework<dyn CrcpComponent> {
    let mut fw: Framework<dyn CrcpComponent> = Framework::new("crcp");
    let t = tracer.clone();
    fw.register("coord", 20, "coordinated bookmark-exchange protocol", move |p| {
        Box::new(CoordCrcp::from_params(t.clone(), p))
    });
    let t = tracer.clone();
    fw.register(
        "logger",
        10,
        "pessimistic sender-based message logging",
        move |_| Box::new(LoggerCrcp::new(t.clone())),
    );
    fw.register("none", 0, "passthrough (overhead measurement)", |_| {
        Box::new(NoneCrcp)
    });
    fw
}

/// The CRCP's INC subsystem handle. Attached to the OMPI layer INC
/// *before* the PML so coordination runs before any MPI subsystem reacts
/// (paper §5.3).
pub struct CrcpFtHandle {
    pml: Arc<PmlShared>,
    /// The process control plane, queried for the in-flight request's
    /// interval so quiesce marks carry SNAPC's numbering. Absent in
    /// standalone use (tests driving the component directly).
    container: Option<Arc<opal::ProcessContainer>>,
}

impl CrcpFtHandle {
    /// Wrap a PML for INC registration.
    pub fn new(pml: Arc<PmlShared>) -> Self {
        CrcpFtHandle { pml, container: None }
    }

    /// Wrap a PML whose checkpoints run under a process container: the
    /// handle tags each coordination round with the container's pending
    /// interval, which the message-log GC needs to match quiesce marks
    /// against the job's global-commit watermark.
    pub fn with_container(pml: Arc<PmlShared>, container: Arc<opal::ProcessContainer>) -> Self {
        CrcpFtHandle {
            pml,
            container: Some(container),
        }
    }
}

impl FtEvent for CrcpFtHandle {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        let Some(component) = self.pml.crcp() else {
            return Ok(()); // infrastructure disabled
        };
        match state {
            FtEventState::Checkpoint => {
                let interval = self.container.as_ref().and_then(|c| c.pending_interval());
                self.pml.with_state(|st| st.ckpt_interval = interval);
                component.coordinate(&self.pml)
            }
            FtEventState::Continue | FtEventState::Restart | FtEventState::Error => {
                component.resume(&self.pml, state)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Fabric, LinkSpec, NodeId, Topology};
    use opal::SafePointGate;

    fn pair() -> (Arc<PmlShared>, Arc<PmlShared>) {
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let ep0 = fabric.register(NodeId(0));
        let ep1 = fabric.register(NodeId(1));
        let peers = vec![ep0.id(), ep1.id()];
        let pml0 = PmlShared::new(
            0,
            2,
            ep0,
            peers.clone(),
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        let pml1 = PmlShared::new(
            1,
            2,
            ep1,
            peers,
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        (pml0, pml1)
    }

    /// Regression for the `component_matrix::blcr_coord_full_oobstream`
    /// flake: a drain with frames still in flight must count each
    /// drained-but-unmatched frame exactly once, and both ranks must
    /// complete coordination.
    #[test]
    fn drain_counts_inflight_frames_exactly_once() {
        let (pml0, pml1) = pair();
        // Three application frames are in flight toward rank 1 when the
        // checkpoint begins.
        for _ in 0..3 {
            pml0.send(0, 1, 7, b"in-flight").unwrap();
        }
        let t0 = {
            let pml0 = Arc::clone(&pml0);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml0))
        };
        let t1 = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        t0.join().unwrap().unwrap();
        t1.join().unwrap().unwrap();
        pml1.with_state(|st| {
            assert_eq!(st.recv_counts[0], 3, "each drained frame counted once");
            assert_eq!(st.unmatched.len(), 3, "drained frames buffered, not lost");
            assert!(st.crcp_inbox.is_empty(), "all control traffic consumed");
        });
        pml0.with_state(|st| assert!(st.crcp_inbox.is_empty()));
    }

    /// The coordinated protocol must not let a fast rank exit coordination
    /// (and resume sending) before every peer has verified its bookmarks:
    /// `coordinate` blocks until all peers report `Quiesced`.
    #[test]
    fn coordinate_holds_exit_barrier_until_peers_quiesce() {
        let (pml0, pml1) = pair();
        let worker = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        // Play rank 0 by hand: bookmark one in-flight frame, deliver it,
        // but withhold the quiesce acknowledgement.
        pml0.send_crcp(1, &CrcpMsg::Bookmark { from: 0, sent: 1 })
            .unwrap();
        pml0.send(0, 1, 7, b"late frame").unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            !worker.is_finished(),
            "rank 1 must stay in coordination until rank 0 quiesces"
        );
        pml0.send_crcp(1, &CrcpMsg::Quiesced { from: 0 }).unwrap();
        worker.join().unwrap().unwrap();
        pml1.with_state(|st| {
            assert_eq!(st.recv_counts[0], 1);
            assert_eq!(st.unmatched.len(), 1);
        });
    }

    fn msg_log_coord(cap_kb: u64) -> Arc<CoordCrcp> {
        let params = McaParams::new();
        params.set("crcp_msg_log_enabled", "true");
        params.set("crcp_msg_log_cap_kb", &cap_kb.to_string());
        Arc::new(CoordCrcp::from_params(Tracer::new(), &params))
    }

    /// The partial-restart message log retains payloads up to the cap and
    /// flags overflow beyond it instead of evicting entries.
    #[test]
    fn msg_log_respects_cap_and_flags_overflow() {
        let (pml0, _pml1) = pair();
        pml0.set_crcp(Some(msg_log_coord(1)));
        pml0.send(0, 1, 7, &[0u8; 600]).unwrap();
        pml0.send(0, 1, 7, &[0u8; 600]).unwrap(); // would exceed 1 KB
        let (entries, bytes, overflow) = pml0.msg_log_stats();
        assert_eq!(entries, 1, "second send must not be logged past the cap");
        assert_eq!(bytes, 600);
        assert!(overflow, "cap hit must be flagged");
    }

    /// An overflow window is pinned to the quiesce that closes it: the
    /// gap blocks partial restarts from any earlier interval, and is
    /// retired once the closing interval reaches global commit (a
    /// restart then restores from at-or-past the window's end).
    #[test]
    fn msg_log_overflow_windows_track_the_commit_watermark() {
        let (pml0, pml1) = pair();
        let crcp0 = msg_log_coord(1);
        let watermark = Arc::new(AtomicU64::new(0));
        crcp0.set_commit_watermark(Arc::clone(&watermark));
        pml0.set_crcp(Some(Arc::clone(&crcp0) as Arc<dyn CrcpComponent>));
        pml0.send(0, 1, 7, &[0u8; 600]).unwrap();
        pml0.send(0, 1, 7, &[0u8; 600]).unwrap(); // past the 1 KB cap: unlogged
        assert!(pml0.msg_log_gapped_since(0), "open-window overflow is a gap");
        // Interval 4 quiesces, closing the window into its mark.
        pml0.with_state(|st| st.ckpt_interval = Some(4));
        let t0 = {
            let (pml0, crcp0) = (Arc::clone(&pml0), Arc::clone(&crcp0));
            std::thread::spawn(move || crcp0.coordinate(&pml0))
        };
        let t1 = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        t0.join().unwrap().unwrap();
        t1.join().unwrap().unwrap();
        assert!(
            pml0.msg_log_gapped_since(4),
            "a restart from before the window would replay a gapped backlog"
        );
        // Interval 4 commits globally: the window precedes the restore point.
        watermark.store(5, Ordering::SeqCst);
        assert!(
            !pml0.msg_log_gapped_since(5),
            "a committed quiesce retires its overflow window"
        );
    }

    /// Coordination marks the log at the quiesce point and `Continue`
    /// (delivered at global commit) garbage-collects below the mark.
    #[test]
    fn msg_log_gc_at_global_commit() {
        let (pml0, pml1) = pair();
        let crcp0 = msg_log_coord(256);
        pml0.set_crcp(Some(Arc::clone(&crcp0) as Arc<dyn CrcpComponent>));
        pml0.send(0, 1, 7, b"logged before quiesce").unwrap();
        let t0 = {
            let (pml0, crcp0) = (Arc::clone(&pml0), Arc::clone(&crcp0));
            std::thread::spawn(move || crcp0.coordinate(&pml0))
        };
        let t1 = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        t0.join().unwrap().unwrap();
        t1.join().unwrap().unwrap();
        let (entries, _, _) = pml0.msg_log_stats();
        assert_eq!(entries, 1, "log survives until global commit");
        crcp0.resume(&pml0, FtEventState::Continue).unwrap();
        let (entries, bytes, _) = pml0.msg_log_stats();
        assert_eq!(entries, 0, "global commit drops the committed interval's log");
        assert_eq!(bytes, 0);
    }

    /// Full rejoin handshake: a restarted rank 1 (fresh endpoint, counters
    /// rolled back to zero) announces itself; the survivor re-points its
    /// peer table, replays its logged backlog, and fences it — after which
    /// fresh traffic flows over the replacement endpoint.
    #[test]
    fn rejoin_replay_repoints_replays_and_fences() {
        let fabric = netsim::Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let ep0 = fabric.register(NodeId(0));
        let ep1 = fabric.register(NodeId(1));
        let peers = vec![ep0.id(), ep1.id()];
        let pml0 = PmlShared::new(
            0,
            2,
            ep0,
            peers.clone(),
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        pml0.set_crcp(Some(msg_log_coord(256)));
        // Two messages leave rank 0 for rank 1 and die with its first
        // incarnation (never polled off the old endpoint).
        pml0.send(0, 1, 7, b"lost one").unwrap();
        pml0.send(0, 1, 7, b"lost two").unwrap();
        // Rank 1 restarts on a fresh endpoint with restored (zero) counts.
        let ep1b = fabric.register(NodeId(1));
        let ep1b_id = ep1b.id();
        let pml1b = PmlShared::new(
            1,
            2,
            ep1b,
            vec![peers[0], ep1b_id],
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        let rejoiner = {
            let pml1b = Arc::clone(&pml1b);
            std::thread::spawn(move || {
                let rejoining: BTreeSet<u32> = [1u32].into_iter().collect();
                rejoin_replay(&pml1b, &rejoining, &Tracer::new())
            })
        };
        // The survivor notices the announcement while pumping its wire.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !rejoiner.is_finished() {
            assert!(Instant::now() < deadline, "handshake did not converge");
            pml0.poll_wire_once(Duration::from_millis(1)).unwrap();
        }
        rejoiner.join().unwrap().unwrap();
        pml1b.with_state(|st| {
            assert_eq!(st.recv_counts[0], 2, "backlog replayed exactly once");
            assert_eq!(st.unmatched.len(), 2);
            assert!(st.crcp_inbox.is_empty(), "fence consumed");
        });
        // The rolled-back receiver re-consumes the backlog in order, then
        // fresh traffic rides the replacement endpoint.
        pml0.send(0, 1, 7, b"fresh").unwrap();
        assert_eq!(pml1b.recv(0, Some(0), Some(7)).unwrap().payload, b"lost one");
        assert_eq!(pml1b.recv(0, Some(0), Some(7)).unwrap().payload, b"lost two");
        assert_eq!(pml1b.recv(0, Some(0), Some(7)).unwrap().payload, b"fresh");
    }
}
