//! CRCP — the Checkpoint/Restart Coordination Protocol framework.
//!
//! A local checkpointer cannot capture the state of communication
//! channels, so a distributed protocol must bring the channels into a
//! known state before the per-process images are taken (paper §5.3).
//! CRCP components are interposed on the PML (the wrapper design of
//! §6.3) and receive checkpoint notification *before any other MPI
//! subsystem*.
//!
//! Components:
//!
//! * **`coord`** — the LAM/MPI-style coordinated protocol the paper
//!   implements: a **bookmark exchange**. At checkpoint time every pair of
//!   processes exchanges per-peer sent-message counts; each receiver then
//!   drains its channels until its received counts match the senders'
//!   bookmarks, buffering drained-but-unmatched messages into the process
//!   image. Operates on whole messages (the paper's refinement over
//!   LAM/MPI's byte counts).
//! * **`logger`** — pessimistic sender-based message logging (the paper's
//!   future-work extension): every outgoing payload is retained by the
//!   sender; nothing is drained at checkpoint time (cheap checkpoints),
//!   and at restart the peers exchange received-counts and senders resend
//!   whatever was in flight. Sequence numbers make resends idempotent.
//!   Checkpoints double as garbage-collection points for the log.
//! * **`none`** — passthrough. With this component installed the full
//!   interposition machinery runs but does nothing: the configuration the
//!   paper benchmarks against the infrastructure-disabled build (§7).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mca::Framework;

use cr_core::{CrError, FtEvent, FtEventState, Tracer};

use crate::frame::{AppFrame, CrcpMsg};
use crate::pml::{PmlShared, PmlState};

/// How long coordination waits for peers before declaring them lost.
const COORD_TIMEOUT: Duration = Duration::from_secs(60);

/// A checkpoint/restart coordination protocol.
pub trait CrcpComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Interposition hook: called (with the PML state locked) before each
    /// application message is sent.
    #[allow(clippy::too_many_arguments)] // mirrors the PML send signature
    fn on_send(
        &self,
        _st: &mut PmlState,
        _me: u32,
        _dst: u32,
        _ctx: u32,
        _tag: u32,
        _seq: u64,
        _payload: &[u8],
    ) {
    }

    /// Interposition hook: called (with the PML state locked) when a
    /// receive operation consumes a message.
    fn on_recv(&self, _st: &mut PmlState, _frame: &AppFrame) {}

    /// Bring the channels into a checkpointable state. Runs on the
    /// checkpoint notification thread with the application thread parked;
    /// every rank runs this concurrently.
    ///
    /// Invariant (model-checked by `cr-model quiesce`, see
    /// `crates/model/src/quiesce.rs` and DESIGN.md §2.4): with the
    /// `Quiesced` exit barrier in place, no rank's post-coordination send
    /// can be counted in a peer's still-open drain — deleting the barrier
    /// makes the checker reproduce the PR 3 bookmark-overrun race in an
    /// 8-step minimal trace.
    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError>;

    /// React to the post-checkpoint state (continue in place, restarted
    /// image, or failed checkpoint).
    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError>;
}

/// Which CRCP control message a collection phase expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollectKind {
    /// Sent-count bookmarks (coordinated protocol, phase one).
    Bookmark,
    /// Received-count exchanges (logger GC / restart negotiation).
    Have,
    /// Quiesce acknowledgements (coordinated protocol, exit barrier).
    Quiesced,
}

/// Collect one control message of the expected kind from every peer while
/// pumping the wire, returning the per-peer values (zero for `Quiesced`,
/// which carries no count).
///
/// The phases of one coordination round overlap across ranks: a fast peer
/// that finished draining sends its `Quiesced` while this rank is still
/// collecting `Bookmark`s, so out-of-phase messages are expected here.
/// They are set aside and re-queued (in arrival order) for the phase that
/// wants them, rather than treated as protocol errors.
fn collect_counts(pml: &PmlShared, kind: CollectKind) -> Result<HashMap<u32, u64>, CrError> {
    let me = pml.me();
    let n = pml.nprocs();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut deferred: Vec<CrcpMsg> = Vec::new();
    let deadline = Instant::now() + COORD_TIMEOUT;
    let outcome = loop {
        pml.with_state(|st| {
            while let Some(msg) = st.crcp_inbox.pop_front() {
                match (msg, kind) {
                    (CrcpMsg::Bookmark { from, sent }, CollectKind::Bookmark) => {
                        counts.insert(from, sent);
                    }
                    (CrcpMsg::Have { from, have }, CollectKind::Have) => {
                        counts.insert(from, have);
                    }
                    (CrcpMsg::Quiesced { from }, CollectKind::Quiesced) => {
                        counts.insert(from, 0);
                    }
                    (other, _) => deferred.push(other),
                }
            }
        });
        if counts.len() == (n - 1) as usize {
            break Ok(counts);
        }
        if Instant::now() > deadline {
            let missing: Vec<u32> = (0..n)
                .filter(|q| *q != me && !counts.contains_key(q))
                .collect();
            break Err(CrError::PeerLost {
                detail: format!("no CRCP counts from ranks {missing:?}"),
            });
        }
        pml.poll_wire_once(Duration::from_millis(1))
            .map_err(|e| CrError::protocol(e.to_string()))?;
    };
    // Hand the out-of-phase messages back, oldest at the front, so the
    // next collection phase finds them in arrival order.
    if !deferred.is_empty() {
        pml.with_state(|st| {
            for msg in deferred.drain(..).rev() {
                st.crcp_inbox.push_front(msg);
            }
        });
    }
    outcome
}

// ---------------------------------------------------------------------------
// coord
// ---------------------------------------------------------------------------

/// Coordinated bookmark-exchange protocol.
pub struct CoordCrcp {
    tracer: Tracer,
}

impl CoordCrcp {
    /// Build with a tracer for phase events.
    pub fn new(tracer: Tracer) -> Self {
        CoordCrcp { tracer }
    }
}

impl CrcpComponent for CoordCrcp {
    fn name(&self) -> &'static str {
        "coord"
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        self.tracer
            .record("ompi.crcp.coordinate", &format!("rank {me} bookmark exchange"));

        // Exchange bookmarks.
        for q in 0..n {
            if q == me {
                continue;
            }
            let sent = pml.with_state(|st| st.sent_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Bookmark { from: me, sent })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        let bookmarks = collect_counts(pml, CollectKind::Bookmark)?;

        // Drain until every peer's sends have been received into the PML.
        let deadline = Instant::now() + COORD_TIMEOUT;
        loop {
            let drained = pml.with_state(|st| {
                bookmarks
                    .iter()
                    .all(|(q, sent)| st.recv_counts[*q as usize] >= *sent)
            });
            if drained {
                break;
            }
            if Instant::now() > deadline {
                return Err(CrError::PeerLost {
                    detail: "channel drain did not converge".into(),
                });
            }
            pml.poll_wire_once(Duration::from_millis(1))
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }

        // The channels are now quiesced: received exactly what was sent.
        pml.with_state(|st| {
            for (q, sent) in &bookmarks {
                let got = st.recv_counts[*q as usize];
                if got != *sent {
                    return Err(CrError::protocol(format!(
                        "bookmark overrun from rank {q}: sent {sent}, received {got}"
                    )));
                }
            }
            Ok(())
        })?;

        // Exit barrier. Without it a fast rank returns, completes its local
        // checkpoint, resumes the application, and sends *new* traffic while
        // a slower peer is still draining — the new frame lands in the slow
        // peer's drain window and trips its bookmark verification ("bookmark
        // overrun: sent N, received N+1", the component_matrix flake).
        for q in 0..n {
            if q == me {
                continue;
            }
            pml.send_crcp(q, &CrcpMsg::Quiesced { from: me })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        collect_counts(pml, CollectKind::Quiesced)?;
        self.tracer
            .record("ompi.crcp.quiesced", &format!("rank {me}"));
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        self.tracer
            .record("ompi.crcp.resume", &format!("rank {} {state}", pml.me()));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// logger
// ---------------------------------------------------------------------------

/// Pessimistic sender-based message logging.
pub struct LoggerCrcp {
    tracer: Tracer,
}

impl LoggerCrcp {
    /// Build with a tracer for phase events.
    pub fn new(tracer: Tracer) -> Self {
        LoggerCrcp { tracer }
    }

    /// Exchange received-counts with every peer.
    fn exchange_have(&self, pml: &PmlShared) -> Result<HashMap<u32, u64>, CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        for q in 0..n {
            if q == me {
                continue;
            }
            let have = pml.with_state(|st| st.recv_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Have { from: me, have })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        collect_counts(pml, CollectKind::Have)
    }
}

impl CrcpComponent for LoggerCrcp {
    fn name(&self) -> &'static str {
        "logger"
    }

    fn on_send(
        &self,
        st: &mut PmlState,
        _me: u32,
        dst: u32,
        ctx: u32,
        tag: u32,
        seq: u64,
        payload: &[u8],
    ) {
        // The failure-free tax of pessimistic logging: retain the payload.
        st.sender_log.push(crate::pml::LoggedSend {
            dst,
            ctx,
            tag,
            seq,
            payload: payload.to_vec(),
        });
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        // No channel drain. Checkpoints double as garbage collection: learn
        // what peers have received and prune the log below those counts.
        self.tracer.record(
            "ompi.crcp.logger.gc",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        pml.with_state(|st| {
            st.sender_log
                .retain(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0));
        });
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        if state != FtEventState::Restart {
            return Ok(());
        }
        // In-flight messages died with the old incarnation: learn what each
        // peer actually received and resend the tail of the log. Sequence
        // numbers de-duplicate anything that did arrive.
        self.tracer.record(
            "ompi.crcp.logger.replay",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        let to_resend: Vec<crate::pml::LoggedSend> = pml.with_state(|st| {
            st.sender_log
                .iter()
                .filter(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0))
                .cloned()
                .collect()
        });
        for entry in &to_resend {
            pml.resend_logged(entry)
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        self.tracer.record(
            "ompi.crcp.logger.resent",
            &format!("rank {}: {} messages", pml.me(), to_resend.len()),
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// none
// ---------------------------------------------------------------------------

/// Passthrough protocol: full interposition, no behaviour. Used to measure
/// the wrapper overhead (experiments E1/E2).
pub struct NoneCrcp;

impl CrcpComponent for NoneCrcp {
    fn name(&self) -> &'static str {
        "none"
    }

    fn coordinate(&self, _pml: &PmlShared) -> Result<(), CrError> {
        // No coordination: with this component a checkpoint captures
        // process images without quiescing channels. Restartable only if
        // nothing was in flight; intended for overhead measurement.
        Ok(())
    }

    fn resume(&self, _pml: &PmlShared, _state: FtEventState) -> Result<(), CrError> {
        Ok(())
    }
}

/// Assemble the CRCP framework (`coord` is the default, as in the paper's
/// first implementation).
pub fn crcp_framework(tracer: Tracer) -> Framework<dyn CrcpComponent> {
    let mut fw: Framework<dyn CrcpComponent> = Framework::new("crcp");
    let t = tracer.clone();
    fw.register("coord", 20, "coordinated bookmark-exchange protocol", move |_| {
        Box::new(CoordCrcp::new(t.clone()))
    });
    let t = tracer.clone();
    fw.register(
        "logger",
        10,
        "pessimistic sender-based message logging",
        move |_| Box::new(LoggerCrcp::new(t.clone())),
    );
    fw.register("none", 0, "passthrough (overhead measurement)", |_| {
        Box::new(NoneCrcp)
    });
    fw
}

/// The CRCP's INC subsystem handle. Attached to the OMPI layer INC
/// *before* the PML so coordination runs before any MPI subsystem reacts
/// (paper §5.3).
pub struct CrcpFtHandle {
    pml: Arc<PmlShared>,
}

impl CrcpFtHandle {
    /// Wrap a PML for INC registration.
    pub fn new(pml: Arc<PmlShared>) -> Self {
        CrcpFtHandle { pml }
    }
}

impl FtEvent for CrcpFtHandle {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        let Some(component) = self.pml.crcp() else {
            return Ok(()); // infrastructure disabled
        };
        match state {
            FtEventState::Checkpoint => component.coordinate(&self.pml),
            FtEventState::Continue | FtEventState::Restart | FtEventState::Error => {
                component.resume(&self.pml, state)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Fabric, LinkSpec, NodeId, Topology};
    use opal::SafePointGate;

    fn pair() -> (Arc<PmlShared>, Arc<PmlShared>) {
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let ep0 = fabric.register(NodeId(0));
        let ep1 = fabric.register(NodeId(1));
        let peers = vec![ep0.id(), ep1.id()];
        let pml0 = PmlShared::new(
            0,
            2,
            ep0,
            peers.clone(),
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        let pml1 = PmlShared::new(
            1,
            2,
            ep1,
            peers,
            Arc::new(SafePointGate::new()),
            Tracer::new(),
        );
        (pml0, pml1)
    }

    /// Regression for the `component_matrix::blcr_coord_full_oobstream`
    /// flake: a drain with frames still in flight must count each
    /// drained-but-unmatched frame exactly once, and both ranks must
    /// complete coordination.
    #[test]
    fn drain_counts_inflight_frames_exactly_once() {
        let (pml0, pml1) = pair();
        // Three application frames are in flight toward rank 1 when the
        // checkpoint begins.
        for _ in 0..3 {
            pml0.send(0, 1, 7, b"in-flight").unwrap();
        }
        let t0 = {
            let pml0 = Arc::clone(&pml0);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml0))
        };
        let t1 = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        t0.join().unwrap().unwrap();
        t1.join().unwrap().unwrap();
        pml1.with_state(|st| {
            assert_eq!(st.recv_counts[0], 3, "each drained frame counted once");
            assert_eq!(st.unmatched.len(), 3, "drained frames buffered, not lost");
            assert!(st.crcp_inbox.is_empty(), "all control traffic consumed");
        });
        pml0.with_state(|st| assert!(st.crcp_inbox.is_empty()));
    }

    /// The coordinated protocol must not let a fast rank exit coordination
    /// (and resume sending) before every peer has verified its bookmarks:
    /// `coordinate` blocks until all peers report `Quiesced`.
    #[test]
    fn coordinate_holds_exit_barrier_until_peers_quiesce() {
        let (pml0, pml1) = pair();
        let worker = {
            let pml1 = Arc::clone(&pml1);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml1))
        };
        // Play rank 0 by hand: bookmark one in-flight frame, deliver it,
        // but withhold the quiesce acknowledgement.
        pml0.send_crcp(1, &CrcpMsg::Bookmark { from: 0, sent: 1 })
            .unwrap();
        pml0.send(0, 1, 7, b"late frame").unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            !worker.is_finished(),
            "rank 1 must stay in coordination until rank 0 quiesces"
        );
        pml0.send_crcp(1, &CrcpMsg::Quiesced { from: 0 }).unwrap();
        worker.join().unwrap().unwrap();
        pml1.with_state(|st| {
            assert_eq!(st.recv_counts[0], 1);
            assert_eq!(st.unmatched.len(), 1);
        });
    }
}
