//! CRCP — the Checkpoint/Restart Coordination Protocol framework.
//!
//! A local checkpointer cannot capture the state of communication
//! channels, so a distributed protocol must bring the channels into a
//! known state before the per-process images are taken (paper §5.3).
//! CRCP components are interposed on the PML (the wrapper design of
//! §6.3) and receive checkpoint notification *before any other MPI
//! subsystem*.
//!
//! Components:
//!
//! * **`coord`** — the LAM/MPI-style coordinated protocol the paper
//!   implements: a **bookmark exchange**. At checkpoint time every pair of
//!   processes exchanges per-peer sent-message counts; each receiver then
//!   drains its channels until its received counts match the senders'
//!   bookmarks, buffering drained-but-unmatched messages into the process
//!   image. Operates on whole messages (the paper's refinement over
//!   LAM/MPI's byte counts).
//! * **`logger`** — pessimistic sender-based message logging (the paper's
//!   future-work extension): every outgoing payload is retained by the
//!   sender; nothing is drained at checkpoint time (cheap checkpoints),
//!   and at restart the peers exchange received-counts and senders resend
//!   whatever was in flight. Sequence numbers make resends idempotent.
//!   Checkpoints double as garbage-collection points for the log.
//! * **`none`** — passthrough. With this component installed the full
//!   interposition machinery runs but does nothing: the configuration the
//!   paper benchmarks against the infrastructure-disabled build (§7).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mca::Framework;

use cr_core::{CrError, FtEvent, FtEventState, Tracer};

use crate::frame::{AppFrame, CrcpMsg};
use crate::pml::{PmlShared, PmlState};

/// How long coordination waits for peers before declaring them lost.
const COORD_TIMEOUT: Duration = Duration::from_secs(60);

/// A checkpoint/restart coordination protocol.
pub trait CrcpComponent: Send + Sync {
    /// Component name.
    fn name(&self) -> &'static str;

    /// Interposition hook: called (with the PML state locked) before each
    /// application message is sent.
    #[allow(clippy::too_many_arguments)] // mirrors the PML send signature
    fn on_send(
        &self,
        _st: &mut PmlState,
        _me: u32,
        _dst: u32,
        _ctx: u32,
        _tag: u32,
        _seq: u64,
        _payload: &[u8],
    ) {
    }

    /// Interposition hook: called (with the PML state locked) when a
    /// receive operation consumes a message.
    fn on_recv(&self, _st: &mut PmlState, _frame: &AppFrame) {}

    /// Bring the channels into a checkpointable state. Runs on the
    /// checkpoint notification thread with the application thread parked;
    /// every rank runs this concurrently.
    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError>;

    /// React to the post-checkpoint state (continue in place, restarted
    /// image, or failed checkpoint).
    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError>;
}

/// Collect one `Bookmark`/`Have` control message from every peer while
/// pumping the wire, returning the per-peer values.
fn collect_counts(
    pml: &PmlShared,
    accept_bookmark: bool,
) -> Result<HashMap<u32, u64>, CrError> {
    let me = pml.me();
    let n = pml.nprocs();
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let deadline = Instant::now() + COORD_TIMEOUT;
    while counts.len() < (n - 1) as usize {
        pml.with_state(|st| {
            while let Some(msg) = st.crcp_inbox.pop_front() {
                match msg {
                    CrcpMsg::Bookmark { from, sent } if accept_bookmark => {
                        counts.insert(from, sent);
                    }
                    CrcpMsg::Have { from, have } if !accept_bookmark => {
                        counts.insert(from, have);
                    }
                    other => {
                        // A message for the other protocol phase would be a
                        // protocol bug; requeue nothing, fail loudly below.
                        st.crcp_inbox.push_front(other);
                    }
                }
            }
            // Avoid an infinite loop when an unexpected message type sits
            // at the head of the inbox.
            if let Some(front) = st.crcp_inbox.front() {
                let wrong_kind = matches!(
                    (front, accept_bookmark),
                    (CrcpMsg::Bookmark { .. }, false) | (CrcpMsg::Have { .. }, true)
                );
                if wrong_kind {
                    return Err(CrError::protocol(format!(
                        "unexpected CRCP message during collection: {front:?}"
                    )));
                }
            }
            Ok(())
        })?;
        if counts.len() == (n - 1) as usize {
            break;
        }
        if Instant::now() > deadline {
            let missing: Vec<u32> = (0..n)
                .filter(|q| *q != me && !counts.contains_key(q))
                .collect();
            return Err(CrError::PeerLost {
                detail: format!("no CRCP counts from ranks {missing:?}"),
            });
        }
        pml.poll_wire_once(Duration::from_millis(1))
            .map_err(|e| CrError::protocol(e.to_string()))?;
    }
    Ok(counts)
}

// ---------------------------------------------------------------------------
// coord
// ---------------------------------------------------------------------------

/// Coordinated bookmark-exchange protocol.
pub struct CoordCrcp {
    tracer: Tracer,
}

impl CoordCrcp {
    /// Build with a tracer for phase events.
    pub fn new(tracer: Tracer) -> Self {
        CoordCrcp { tracer }
    }
}

impl CrcpComponent for CoordCrcp {
    fn name(&self) -> &'static str {
        "coord"
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        self.tracer
            .record("ompi.crcp.coordinate", &format!("rank {me} bookmark exchange"));

        // Exchange bookmarks.
        for q in 0..n {
            if q == me {
                continue;
            }
            let sent = pml.with_state(|st| st.sent_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Bookmark { from: me, sent })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        let bookmarks = collect_counts(pml, true)?;

        // Drain until every peer's sends have been received into the PML.
        let deadline = Instant::now() + COORD_TIMEOUT;
        loop {
            let drained = pml.with_state(|st| {
                bookmarks
                    .iter()
                    .all(|(q, sent)| st.recv_counts[*q as usize] >= *sent)
            });
            if drained {
                break;
            }
            if Instant::now() > deadline {
                return Err(CrError::PeerLost {
                    detail: "channel drain did not converge".into(),
                });
            }
            pml.poll_wire_once(Duration::from_millis(1))
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }

        // The channels are now quiesced: received exactly what was sent.
        pml.with_state(|st| {
            for (q, sent) in &bookmarks {
                let got = st.recv_counts[*q as usize];
                if got != *sent {
                    return Err(CrError::protocol(format!(
                        "bookmark overrun from rank {q}: sent {sent}, received {got}"
                    )));
                }
            }
            Ok(())
        })?;
        self.tracer
            .record("ompi.crcp.quiesced", &format!("rank {me}"));
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        self.tracer
            .record("ompi.crcp.resume", &format!("rank {} {state}", pml.me()));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// logger
// ---------------------------------------------------------------------------

/// Pessimistic sender-based message logging.
pub struct LoggerCrcp {
    tracer: Tracer,
}

impl LoggerCrcp {
    /// Build with a tracer for phase events.
    pub fn new(tracer: Tracer) -> Self {
        LoggerCrcp { tracer }
    }

    /// Exchange received-counts with every peer.
    fn exchange_have(&self, pml: &PmlShared) -> Result<HashMap<u32, u64>, CrError> {
        let me = pml.me();
        let n = pml.nprocs();
        for q in 0..n {
            if q == me {
                continue;
            }
            let have = pml.with_state(|st| st.recv_counts[q as usize]);
            pml.send_crcp(q, &CrcpMsg::Have { from: me, have })
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        collect_counts(pml, false)
    }
}

impl CrcpComponent for LoggerCrcp {
    fn name(&self) -> &'static str {
        "logger"
    }

    fn on_send(
        &self,
        st: &mut PmlState,
        _me: u32,
        dst: u32,
        ctx: u32,
        tag: u32,
        seq: u64,
        payload: &[u8],
    ) {
        // The failure-free tax of pessimistic logging: retain the payload.
        st.sender_log.push(crate::pml::LoggedSend {
            dst,
            ctx,
            tag,
            seq,
            payload: payload.to_vec(),
        });
    }

    fn coordinate(&self, pml: &PmlShared) -> Result<(), CrError> {
        // No channel drain. Checkpoints double as garbage collection: learn
        // what peers have received and prune the log below those counts.
        self.tracer.record(
            "ompi.crcp.logger.gc",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        pml.with_state(|st| {
            st.sender_log
                .retain(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0));
        });
        Ok(())
    }

    fn resume(&self, pml: &PmlShared, state: FtEventState) -> Result<(), CrError> {
        if state != FtEventState::Restart {
            return Ok(());
        }
        // In-flight messages died with the old incarnation: learn what each
        // peer actually received and resend the tail of the log. Sequence
        // numbers de-duplicate anything that did arrive.
        self.tracer.record(
            "ompi.crcp.logger.replay",
            &format!("rank {}", pml.me()),
        );
        let have = self.exchange_have(pml)?;
        let to_resend: Vec<crate::pml::LoggedSend> = pml.with_state(|st| {
            st.sender_log
                .iter()
                .filter(|entry| entry.seq >= *have.get(&entry.dst).unwrap_or(&0))
                .cloned()
                .collect()
        });
        for entry in &to_resend {
            pml.resend_logged(entry)
                .map_err(|e| CrError::protocol(e.to_string()))?;
        }
        self.tracer.record(
            "ompi.crcp.logger.resent",
            &format!("rank {}: {} messages", pml.me(), to_resend.len()),
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// none
// ---------------------------------------------------------------------------

/// Passthrough protocol: full interposition, no behaviour. Used to measure
/// the wrapper overhead (experiments E1/E2).
pub struct NoneCrcp;

impl CrcpComponent for NoneCrcp {
    fn name(&self) -> &'static str {
        "none"
    }

    fn coordinate(&self, _pml: &PmlShared) -> Result<(), CrError> {
        // No coordination: with this component a checkpoint captures
        // process images without quiescing channels. Restartable only if
        // nothing was in flight; intended for overhead measurement.
        Ok(())
    }

    fn resume(&self, _pml: &PmlShared, _state: FtEventState) -> Result<(), CrError> {
        Ok(())
    }
}

/// Assemble the CRCP framework (`coord` is the default, as in the paper's
/// first implementation).
pub fn crcp_framework(tracer: Tracer) -> Framework<dyn CrcpComponent> {
    let mut fw: Framework<dyn CrcpComponent> = Framework::new("crcp");
    let t = tracer.clone();
    fw.register("coord", 20, "coordinated bookmark-exchange protocol", move |_| {
        Box::new(CoordCrcp::new(t.clone()))
    });
    let t = tracer.clone();
    fw.register(
        "logger",
        10,
        "pessimistic sender-based message logging",
        move |_| Box::new(LoggerCrcp::new(t.clone())),
    );
    fw.register("none", 0, "passthrough (overhead measurement)", |_| {
        Box::new(NoneCrcp)
    });
    fw
}

/// The CRCP's INC subsystem handle. Attached to the OMPI layer INC
/// *before* the PML so coordination runs before any MPI subsystem reacts
/// (paper §5.3).
pub struct CrcpFtHandle {
    pml: Arc<PmlShared>,
}

impl CrcpFtHandle {
    /// Wrap a PML for INC registration.
    pub fn new(pml: Arc<PmlShared>) -> Self {
        CrcpFtHandle { pml }
    }
}

impl FtEvent for CrcpFtHandle {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        let Some(component) = self.pml.crcp() else {
            return Ok(()); // infrastructure disabled
        };
        match state {
            FtEventState::Checkpoint => component.coordinate(&self.pml),
            FtEventState::Continue | FtEventState::Restart | FtEventState::Error => {
                component.resume(&self.pml, state)
            }
        }
    }
}
