//! The per-process MPI handle.
//!
//! [`Mpi`] is what application code holds: typed point-to-point and
//! collective operations (payloads serialized with the `codec` binary
//! format), communicator management, explicit progress/safe points, and
//! the fault-tolerance application API the paper adds — SELF-component
//! callbacks, the non-checkpointable declaration, and synchronous
//! checkpoint requests.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::Sender;
use serde::de::DeserializeOwned;
use serde::Serialize;

use cr_core::request::CheckpointOptions;
use cr_core::{CrError, Tracer};
use opal::crs::SelfCallbacks;
use opal::ProcessContainer;

use crate::coll;
use crate::comm::Comm;
use crate::error::MpiError;
use crate::pml::PmlShared;

/// Completion information of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// World rank of the sender.
    pub source: u32,
    /// MPI tag of the message.
    pub tag: u32,
}

/// A non-blocking request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request(pub u64);

/// The per-process MPI interface.
pub struct Mpi {
    pml: Arc<PmlShared>,
    world: Comm,
    next_ctx: Arc<AtomicU32>,
    container: Arc<ProcessContainer>,
    self_callbacks: Arc<SelfCallbacks>,
    terminate: Arc<AtomicBool>,
    sync_ckpt: Option<Sender<CheckpointOptions>>,
    tracer: Tracer,
}

impl Mpi {
    /// Assemble the handle (called by the init path, not applications).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pml: Arc<PmlShared>,
        next_ctx: Arc<AtomicU32>,
        container: Arc<ProcessContainer>,
        self_callbacks: Arc<SelfCallbacks>,
        terminate: Arc<AtomicBool>,
        sync_ckpt: Option<Sender<CheckpointOptions>>,
        tracer: Tracer,
    ) -> Mpi {
        let world = Comm::world(pml.nprocs(), pml.me());
        Mpi {
            pml,
            world,
            next_ctx,
            container,
            self_callbacks,
            terminate,
            sync_ckpt,
            tracer,
        }
    }

    /// World rank of this process.
    pub fn rank(&self) -> u32 {
        self.pml.me()
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.pml.nprocs()
    }

    /// `MPI_COMM_WORLD`.
    pub fn world(&self) -> &Comm {
        &self.world
    }

    /// The underlying PML (benchmarks and protocol tests reach through).
    pub fn pml(&self) -> &Arc<PmlShared> {
        &self.pml
    }

    /// The process container (fault-tolerance control plane).
    pub fn container(&self) -> &Arc<ProcessContainer> {
        &self.container
    }

    // -- point-to-point ------------------------------------------------------

    /// Blocking typed send on `comm`.
    pub fn send<T: Serialize + ?Sized>(
        &self,
        comm: &Comm,
        dst: u32,
        tag: u32,
        value: &T,
    ) -> Result<(), MpiError> {
        let payload = codec::to_bytes(value)?;
        self.pml
            .send(comm.ctx_p2p(), comm.world_rank(dst)?, tag, &payload)
    }

    /// Blocking typed receive on `comm`. `src`/`tag` of `None` = any.
    pub fn recv<T: DeserializeOwned>(
        &self,
        comm: &Comm,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<(T, Status), MpiError> {
        let src_world = match src {
            Some(s) => Some(comm.world_rank(s)?),
            None => None,
        };
        let frame = self.pml.recv(comm.ctx_p2p(), src_world, tag)?;
        let value = codec::from_bytes(&frame.payload)?;
        let source = comm
            .comm_rank_of_world(frame.src)
            .ok_or_else(|| MpiError::Invalid {
                detail: format!("message from world rank {} outside communicator", frame.src),
            })?;
        Ok((
            value,
            Status {
                source,
                tag: frame.tag,
            },
        ))
    }

    /// Raw byte send (benchmarks use this to avoid codec cost).
    pub fn send_bytes(&self, comm: &Comm, dst: u32, tag: u32, bytes: &[u8]) -> Result<(), MpiError> {
        self.pml.send(comm.ctx_p2p(), comm.world_rank(dst)?, tag, bytes)
    }

    /// Raw byte receive.
    pub fn recv_bytes(
        &self,
        comm: &Comm,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<(Vec<u8>, Status), MpiError> {
        let src_world = match src {
            Some(s) => Some(comm.world_rank(s)?),
            None => None,
        };
        let frame = self.pml.recv(comm.ctx_p2p(), src_world, tag)?;
        let source = comm.comm_rank_of_world(frame.src).unwrap_or(frame.src);
        Ok((
            frame.payload,
            Status {
                source,
                tag: frame.tag,
            },
        ))
    }

    /// Non-blocking typed send.
    pub fn isend<T: Serialize + ?Sized>(
        &self,
        comm: &Comm,
        dst: u32,
        tag: u32,
        value: &T,
    ) -> Result<Request, MpiError> {
        let payload = codec::to_bytes(value)?;
        Ok(Request(self.pml.isend(
            comm.ctx_p2p(),
            comm.world_rank(dst)?,
            tag,
            &payload,
        )?))
    }

    /// Non-blocking receive.
    pub fn irecv(
        &self,
        comm: &Comm,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<Request, MpiError> {
        let src_world = match src {
            Some(s) => Some(comm.world_rank(s)?),
            None => None,
        };
        Ok(Request(self.pml.irecv(comm.ctx_p2p(), src_world, tag)?))
    }

    /// Wait for a receive request, decoding the payload.
    pub fn wait_recv<T: DeserializeOwned>(&self, req: Request) -> Result<(T, Status), MpiError> {
        match self.pml.wait(req.0)? {
            Some(frame) => Ok((
                codec::from_bytes(&frame.payload)?,
                Status {
                    source: frame.src,
                    tag: frame.tag,
                },
            )),
            None => Err(MpiError::BadRequest { request: req.0 }),
        }
    }

    /// Wait for a send request.
    pub fn wait_send(&self, req: Request) -> Result<(), MpiError> {
        self.pml.wait(req.0)?;
        Ok(())
    }

    /// Non-blocking completion test for a receive request.
    pub fn test_recv<T: DeserializeOwned>(
        &self,
        req: Request,
    ) -> Result<Option<(T, Status)>, MpiError> {
        match self.pml.test(req.0)? {
            None => Ok(None),
            Some(Some(frame)) => Ok(Some((
                codec::from_bytes(&frame.payload)?,
                Status {
                    source: frame.src,
                    tag: frame.tag,
                },
            ))),
            Some(None) => Err(MpiError::BadRequest { request: req.0 }),
        }
    }

    /// Blocking probe: metadata of the next matching message without
    /// consuming it.
    pub fn probe(
        &self,
        comm: &Comm,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<Status, MpiError> {
        let src_world = match src {
            Some(s) => Some(comm.world_rank(s)?),
            None => None,
        };
        let (found_src, found_tag, _len) = self.pml.probe(comm.ctx_p2p(), src_world, tag)?;
        Ok(Status {
            source: comm.comm_rank_of_world(found_src).unwrap_or(found_src),
            tag: found_tag,
        })
    }

    /// Combined send and receive (`MPI_Sendrecv`): deadlock-safe because
    /// sends are buffered.
    pub fn sendrecv<S, R>(
        &self,
        comm: &Comm,
        dst: u32,
        send_tag: u32,
        value: &S,
        src: Option<u32>,
        recv_tag: Option<u32>,
    ) -> Result<(R, Status), MpiError>
    where
        S: Serialize + ?Sized,
        R: DeserializeOwned,
    {
        self.send(comm, dst, send_tag, value)?;
        self.recv(comm, src, recv_tag)
    }

    /// Inclusive prefix scan (`MPI_Scan`): rank `r` receives
    /// `combine(v_0, ..., v_r)`. Linear pipeline over point-to-point in
    /// the collective context (no tag collisions with application
    /// traffic), so `combine` need only be associative.
    pub fn scan<T, F>(&self, comm: &Comm, value: T, combine: F) -> Result<T, MpiError>
    where
        T: Serialize + DeserializeOwned,
        F: Fn(T, T) -> T,
    {
        const SCAN_TAG: u32 = 7 << 8; // op 7 in the collective tag space
        let me = comm.rank();
        let n = comm.size();
        let ctx = comm.ctx_coll();
        let acc = if me == 0 {
            value
        } else {
            let frame = self
                .pml
                .recv(ctx, Some(comm.world_rank(me - 1)?), Some(SCAN_TAG))?;
            let prev: T = codec::from_bytes(&frame.payload)?;
            combine(prev, value)
        };
        if me + 1 < n {
            let bytes = codec::to_bytes(&acc)?;
            self.pml
                .send(ctx, comm.world_rank(me + 1)?, SCAN_TAG, &bytes)?;
        }
        Ok(acc)
    }

    // -- collectives -----------------------------------------------------------

    /// Barrier over `comm`.
    pub fn barrier(&self, comm: &Comm) -> Result<(), MpiError> {
        coll::barrier(&self.pml, comm)
    }

    /// Broadcast `value` from `root`; every rank returns the root's value.
    pub fn bcast<T: Serialize + DeserializeOwned>(
        &self,
        comm: &Comm,
        root: u32,
        value: T,
    ) -> Result<T, MpiError> {
        let mut blob = if comm.rank() == root {
            codec::to_bytes(&value)?
        } else {
            Vec::new()
        };
        coll::bcast_bytes(&self.pml, comm, root, &mut blob)?;
        Ok(codec::from_bytes(&blob)?)
    }

    /// Reduce with `combine` to `root`; `Some` at the root, `None` elsewhere.
    pub fn reduce<T, F>(
        &self,
        comm: &Comm,
        root: u32,
        value: T,
        combine: F,
    ) -> Result<Option<T>, MpiError>
    where
        T: Serialize + DeserializeOwned,
        F: Fn(T, T) -> T,
    {
        let mut combine_bytes = |a: Vec<u8>, b: Vec<u8>| -> Result<Vec<u8>, MpiError> {
            let av: T = codec::from_bytes(&a)?;
            let bv: T = codec::from_bytes(&b)?;
            Ok(codec::to_bytes(&combine(av, bv))?)
        };
        let out = coll::reduce_bytes(
            &self.pml,
            comm,
            root,
            codec::to_bytes(&value)?,
            &mut combine_bytes,
        )?;
        match out {
            Some(bytes) => Ok(Some(codec::from_bytes(&bytes)?)),
            None => Ok(None),
        }
    }

    /// All-reduce with `combine`.
    pub fn allreduce<T, F>(&self, comm: &Comm, value: T, combine: F) -> Result<T, MpiError>
    where
        T: Serialize + DeserializeOwned,
        F: Fn(T, T) -> T,
    {
        let mut combine_bytes = |a: Vec<u8>, b: Vec<u8>| -> Result<Vec<u8>, MpiError> {
            let av: T = codec::from_bytes(&a)?;
            let bv: T = codec::from_bytes(&b)?;
            Ok(codec::to_bytes(&combine(av, bv))?)
        };
        let bytes = coll::allreduce_bytes(
            &self.pml,
            comm,
            codec::to_bytes(&value)?,
            &mut combine_bytes,
        )?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// Gather to `root`: `Some(values)` (comm-rank order) at root.
    pub fn gather<T: Serialize + DeserializeOwned>(
        &self,
        comm: &Comm,
        root: u32,
        value: &T,
    ) -> Result<Option<Vec<T>>, MpiError> {
        let mine = codec::to_bytes(value)?;
        match coll::gather_bytes(&self.pml, comm, root, &mine)? {
            Some(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                for p in parts {
                    out.push(codec::from_bytes(&p)?);
                }
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    /// Scatter from `root`: rank `r` receives `parts[r]`.
    pub fn scatter<T: Serialize + DeserializeOwned>(
        &self,
        comm: &Comm,
        root: u32,
        parts: Option<Vec<T>>,
    ) -> Result<T, MpiError> {
        let encoded: Option<Vec<Vec<u8>>> = match parts {
            Some(v) => {
                let mut out = Vec::with_capacity(v.len());
                for item in &v {
                    out.push(codec::to_bytes(item)?);
                }
                Some(out)
            }
            None => None,
        };
        let bytes = coll::scatter_bytes(&self.pml, comm, root, encoded.as_deref())?;
        Ok(codec::from_bytes(&bytes)?)
    }

    /// All-gather: every rank receives every rank's value.
    pub fn allgather<T: Serialize + DeserializeOwned>(
        &self,
        comm: &Comm,
        value: &T,
    ) -> Result<Vec<T>, MpiError> {
        let mine = codec::to_bytes(value)?;
        let parts = coll::allgather_bytes(&self.pml, comm, &mine)?;
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            out.push(codec::from_bytes(&p)?);
        }
        Ok(out)
    }

    /// All-to-all: rank `r` sends `parts[q]` to rank `q`.
    pub fn alltoall<T: Serialize + DeserializeOwned>(
        &self,
        comm: &Comm,
        parts: Vec<T>,
    ) -> Result<Vec<T>, MpiError> {
        let mut encoded = Vec::with_capacity(parts.len());
        for item in &parts {
            encoded.push(codec::to_bytes(item)?);
        }
        let raw = coll::alltoall_bytes(&self.pml, comm, &encoded)?;
        let mut out = Vec::with_capacity(raw.len());
        for p in raw {
            out.push(codec::from_bytes(&p)?);
        }
        Ok(out)
    }

    // -- communicator management ---------------------------------------------

    /// Collectively allocate a fresh context-id base. Derived from an
    /// all-reduce so the result is identical on every member and
    /// deterministic under replay.
    fn alloc_ctx(&self, comm: &Comm) -> Result<u32, MpiError> {
        let local = self.next_ctx.load(Ordering::SeqCst);
        let agreed = self.allreduce(comm, local, |a: u32, b: u32| a.max(b))?;
        self.next_ctx.store(agreed + 2, Ordering::SeqCst);
        Ok(agreed)
    }

    /// Duplicate `comm` with fresh context ids (collective).
    pub fn comm_dup(&self, comm: &Comm) -> Result<Comm, MpiError> {
        let ctx = self.alloc_ctx(comm)?;
        Ok(Comm::from_parts(
            ctx,
            comm.members().to_vec(),
            self.rank(),
        ))
    }

    /// Split `comm` by `color` (collective); ordering within a color is by
    /// `key`, ties by rank.
    pub fn comm_split(&self, comm: &Comm, color: u32, key: u32) -> Result<Comm, MpiError> {
        let ctx = self.alloc_ctx(comm)?;
        let all: Vec<(u32, u32, u32)> =
            self.allgather(comm, &(color, key, self.rank()))?;
        let mut members: Vec<(u32, u32)> = all
            .into_iter()
            .filter(|(c, _, _)| *c == color)
            .map(|(_, k, w)| (k, w))
            .collect();
        members.sort_unstable();
        let ranks: Vec<u32> = members.into_iter().map(|(_, w)| w).collect();
        Ok(Comm::from_parts(ctx, ranks, self.rank()))
    }

    /// Restore the MPI-layer state (the "ompi" image section; the capture
    /// side is registered directly against `next_ctx` at init).
    pub(crate) fn restore_section(next_ctx: &AtomicU32, bytes: &[u8]) -> Result<(), CrError> {
        let v: u32 = codec::from_bytes(bytes)?;
        next_ctx.store(v, Ordering::SeqCst);
        Ok(())
    }

    // -- fault-tolerance application API ------------------------------------------

    /// Explicit safe point: in long computational phases with no MPI
    /// calls, call this periodically so checkpoints are not delayed.
    pub fn progress(&self) {
        if !self.pml.is_replaying() {
            self.container.gate().checkpoint_point();
        }
    }

    /// True once the job was asked to terminate (e.g. after a
    /// checkpoint-and-terminate request); the application should finish
    /// its current step and return.
    pub fn should_terminate(&self) -> bool {
        self.terminate.load(Ordering::SeqCst)
    }

    /// Register a SELF-component callback fired just before a checkpoint.
    pub fn on_checkpoint(&self, cb: impl FnMut() -> Result<(), CrError> + Send + 'static) {
        *self.self_callbacks.on_checkpoint.lock() = Some(Box::new(cb));
    }

    /// Register a SELF-component callback fired when execution continues
    /// after a checkpoint.
    pub fn on_continue(&self, cb: impl FnMut() -> Result<(), CrError> + Send + 'static) {
        *self.self_callbacks.on_continue.lock() = Some(Box::new(cb));
    }

    /// Register a SELF-component callback fired after a restart.
    pub fn on_restart(&self, cb: impl FnMut() -> Result<(), CrError> + Send + 'static) {
        *self.self_callbacks.on_restart.lock() = Some(Box::new(cb));
    }

    /// Declare whether this process may be checkpointed (paper §5.1).
    pub fn set_checkpointable(&self, value: bool) {
        self.container.set_checkpointable(value);
    }

    /// Synchronous checkpoint request from application code (paper §1's
    /// "synchronous checkpoint requests are handled by an application via
    /// a common API"). The request is queued to the job's coordinator; the
    /// checkpoint is taken at this process's next safe point — it does NOT
    /// complete before this call returns.
    pub fn request_checkpoint(&self, options: CheckpointOptions) -> Result<(), MpiError> {
        let tx = self.sync_ckpt.as_ref().ok_or_else(|| MpiError::Cr(CrError::Unsupported {
            detail: "synchronous checkpoint requests are not wired for this job".into(),
        }))?;
        self.tracer
            .record("ompi.sync_ckpt.request", &format!("rank {}", self.rank()));
        tx.send(options).map_err(|_| {
            MpiError::Cr(CrError::Unsupported {
                detail: "job coordinator is gone".into(),
            })
        })
    }
}
