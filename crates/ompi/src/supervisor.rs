//! Automatic recovery: periodic checkpoints plus restart-on-failure.
//!
//! The paper closes by naming "automatic, transparent recovery" as a
//! capability its infrastructure is designed to enable (§8). This module
//! is that capability, built purely on the public pieces the paper
//! provides: a supervisor launches the job, takes periodic checkpoints
//! through SNAPC, watches for rank failures, and — when one occurs —
//! terminates the survivors cooperatively and restarts the job from the
//! most recent global snapshot reference. Applications participate only
//! by being checkpointable; recovery is transparent to them.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cr_core::request::CheckpointOptions;
use cr_core::CrError;
use orte::Runtime;
use parking_lot::Mutex;

use crate::app::{MpiApp, RunEnd};
use crate::init::{mpirun, restart, MpiJob, RestartOptions, RunConfig};

/// Recovery policy knobs.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Wall-clock interval between automatic checkpoints.
    pub checkpoint_every: Duration,
    /// How many restarts to attempt before giving up.
    pub max_restarts: u32,
    /// How often the supervisor polls for rank failures.
    pub poll_every: Duration,
    /// How each recovery restart is performed. The default
    /// ([`RestartOptions::default`]) is the fast path: newest committed
    /// interval, surviving peer memory first, stable storage for whatever
    /// it cannot serve, digest verification on.
    pub restart: RestartOptions,
    /// Try partial restart first: recover only the failed ranks onto
    /// spare nodes ([`MpiJob::restart_ranks`]) while the survivors stay
    /// live, falling back to the terminate-and-relaunch path when it
    /// refuses (no committed snapshot yet, message log off, survivor log
    /// overflow, spare pool exhausted, no surviving replica holder, …).
    /// The supervisor marks the job partial-recovery-active
    /// (`JobHandle::set_partial_recovery`) before watching it, so a
    /// failing rank leaves its survivors live for the watchdog instead of
    /// terminating the job. Needs `crcp_msg_log_enabled=true` and
    /// `orte_spare_nodes>0` to ever succeed.
    pub partial: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: Duration::from_millis(200),
            max_restarts: 3,
            poll_every: Duration::from_millis(10),
            restart: RestartOptions::default(),
            partial: false,
        }
    }
}

/// What the supervisor did on the way to the answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Full restarts performed (whole-job relaunches).
    pub restarts: u32,
    /// Partial restarts performed (failed ranks only, survivors live).
    pub partial_restarts: u32,
    /// Periodic checkpoints that committed successfully.
    pub checkpoints: u32,
    /// Failure descriptions observed (one per failed incarnation).
    pub failures: Vec<String>,
}

/// Drive one incarnation: periodic checkpoints + failure watchdog.
/// Returns `Ok(results)` or `Err(what failed)`, plus checkpoints taken.
fn run_incarnation<A: MpiApp>(
    job: MpiJob<A::State>,
    policy: &RecoveryPolicy,
    last_snapshot: &Arc<Mutex<Option<PathBuf>>>,
) -> (Result<Vec<(A::State, RunEnd)>, CrError>, u32, u32) {
    let handle = Arc::clone(job.handle());
    let stop = Arc::new(AtomicBool::new(false));
    let checkpoints = Arc::new(Mutex::new(0u32));

    // Periodic checkpoint service.
    let ticker = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let last = Arc::clone(last_snapshot);
        let counts = Arc::clone(&checkpoints);
        let every = policy.checkpoint_every;
        std::thread::spawn(move || loop {
            // Sleep in small slices so shutdown is prompt.
            let mut waited = Duration::ZERO;
            while waited < every {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
                waited += Duration::from_millis(5);
            }
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if let Ok(outcome) = handle.checkpoint(&CheckpointOptions::tool()) {
                *last.lock() = Some(outcome.global_snapshot);
                *counts.lock() += 1;
            }
        })
    };

    // Failure watchdog. Under `policy.partial` a failed rank is first
    // restored in place — only its image is fetched, only a spare node is
    // claimed, and the survivors stay live through the replay handshake.
    // Anything that makes partial recovery refuse (no committed snapshot
    // yet, too many attempts, spare pool dry, …) falls back to the
    // original path: terminate the survivors so `wait()` can complete and
    // the outer loop relaunches the whole job.
    let tracer = handle.runtime().tracer().clone();
    let mut partials = 0u32;
    while !job.is_settled() {
        let failed = job.failed_ranks();
        if !failed.is_empty() {
            let mut recovered = false;
            if policy.partial && partials < policy.max_restarts {
                if let Some(snapshot) = last_snapshot.lock().clone() {
                    let opts = policy
                        .restart
                        .clone()
                        .with_ranks(failed.iter().map(|&r| r as u32).collect());
                    match job.restart_ranks(&snapshot, &opts) {
                        Ok(outcome) => {
                            partials += 1;
                            recovered = true;
                            tracer.record(
                                "supervisor.partial_recover",
                                &format!(
                                    "ranks {:?} -> spares {:?} (interval {}, sim {})",
                                    outcome.ranks,
                                    outcome.spares,
                                    outcome.interval,
                                    outcome.sim_cost
                                ),
                            );
                        }
                        Err(e) => tracer.record(
                            "supervisor.partial_refused",
                            &format!("falling back to full restart: {e}"),
                        ),
                    }
                }
            }
            if !recovered {
                handle.request_terminate();
                break;
            }
            continue;
        }
        std::thread::sleep(policy.poll_every);
    }

    let result = job.wait();
    stop.store(true, Ordering::SeqCst);
    let _ = ticker.join();
    let taken = *checkpoints.lock();
    (result, taken, partials)
}

/// Run `app` to completion with automatic checkpointing and recovery.
///
/// On a rank failure the job is restarted from the most recent periodic
/// checkpoint (or relaunched from scratch if none committed yet), up to
/// `policy.max_restarts` times.
pub fn run_with_recovery<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    config: RunConfig,
    policy: &RecoveryPolicy,
) -> Result<(Vec<(A::State, RunEnd)>, RecoveryReport), CrError> {
    let last_snapshot: Arc<Mutex<Option<PathBuf>>> = Arc::new(Mutex::new(None));
    let mut report = RecoveryReport::default();

    loop {
        let job = match last_snapshot.lock().clone() {
            None => mpirun(runtime, Arc::clone(&app), config.clone())?,
            Some(snapshot) => restart(runtime, Arc::clone(&app), &snapshot, policy.restart.clone())?,
        };
        // Declare the watchdog before any rank can fail: with the flag
        // set, a failing rank leaves its survivors live for the partial
        // path instead of pulling the whole job down.
        if policy.partial {
            job.handle().set_partial_recovery(true);
        }
        runtime.tracer().record(
            "supervisor.incarnation",
            &format!("restarts so far: {}", report.restarts),
        );
        let (result, checkpoints, partials) =
            run_incarnation::<A>(job, policy, &last_snapshot);
        report.checkpoints += checkpoints;
        report.partial_restarts += partials;
        match result {
            Ok(results) => {
                // A terminated incarnation (watchdog fired between the
                // failure report and wait) still counts as a failure.
                if results
                    .iter()
                    .all(|(_, end)| *end == RunEnd::Completed)
                {
                    return Ok((results, report));
                }
                report
                    .failures
                    .push("incarnation terminated before completion".into());
            }
            Err(e) => report.failures.push(e.to_string()),
        }
        if report.restarts >= policy.max_restarts {
            return Err(CrError::protocol(format!(
                "job failed after {} restarts: {}",
                report.restarts,
                report.failures.join(" | ")
            )));
        }
        report.restarts += 1;
        runtime
            .tracer()
            .record("supervisor.recover", &format!("attempt {}", report.restarts));
    }
}
