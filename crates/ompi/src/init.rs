//! `MPI_Init`/`MPI_Finalize` equivalents, the `mpirun`-style launcher, and
//! restart from a global snapshot reference.
//!
//! Per-process startup (the simulated `MPI_Init`):
//!
//! 1. select and install the CRS component (OPAL),
//! 2. register a fabric endpoint and rendezvous with the peers through
//!    the modex,
//! 3. build the PML, restore its state when this is a restart,
//! 4. select the CRCP component and interpose it on the PML,
//! 5. register the capture sections (`app`, `pml`, `ompi`),
//! 6. install the three-layer INC stack (OPAL → ORTE → OMPI),
//! 7. on restart: deliver [`FtEventState::Restart`] through the chain
//!    (message-logging resends happen here) and fire the SELF restart
//!    callback,
//! 8. enter the application step loop; checkpointing is enabled once the
//!    first boundary image exists and disabled again at finalize.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::Sender;
use mca::McaParams;
use netsim::EndpointId;
use parking_lot::Mutex;

use cr_core::inc::LayerInc;
use cr_core::request::{CheckpointOptions, CheckpointOutcome};
use cr_core::snapshot::GlobalSnapshot;
use cr_core::{CrError, FtEvent, FtEventState, Tracer};
use opal::crs::{crs_framework, SelfCallbacks};
use opal::ProgressEngine;
use orte::job::{launch, JobSpec, LaunchCtx, ProcMain};
use orte::{JobHandle, Runtime};

use crate::app::{run_app, BoundaryCell, MpiApp, RunEnd};
use crate::crcp::{crcp_framework, CrcpFtHandle};
use crate::error::MpiError;
use crate::mpi::Mpi;
use crate::pml::{PmlFtHandle, PmlShared};

/// Launch configuration.
#[derive(Clone)]
pub struct RunConfig {
    /// Number of ranks.
    pub nprocs: u32,
    /// MCA parameters (component selection, tunables).
    pub params: Arc<McaParams>,
}

impl RunConfig {
    /// `nprocs` ranks with default parameters.
    pub fn new(nprocs: u32) -> Self {
        RunConfig {
            nprocs,
            params: Arc::new(McaParams::new()),
        }
    }

    /// Set one MCA parameter (builder style).
    pub fn with_param(self, key: &str, value: &str) -> Self {
        self.params.set(key, value);
        self
    }
}

type RankResult<S> = Option<Result<(S, RunEnd), String>>;

/// Spare nodes claimed for a partial restart but not yet spent. Every
/// refusal or fetch error after the claim must return the nodes to the
/// runtime pool — otherwise a refused `restart_ranks` would silently
/// drain it and later attempts would spuriously see "no spare node
/// available". Dropping the lease without [`SpareLease::commit`]
/// re-registers every claimed node.
struct SpareLease<'a> {
    runtime: &'a Runtime,
    nodes: Vec<netsim::NodeId>,
    committed: bool,
}

impl<'a> SpareLease<'a> {
    fn new(runtime: &'a Runtime) -> Self {
        SpareLease {
            runtime,
            nodes: Vec::new(),
            committed: false,
        }
    }

    /// Claim one spare from the pool into the lease.
    fn claim(&mut self) -> Option<netsim::NodeId> {
        let node = self.runtime.claim_spare()?;
        self.nodes.push(node);
        Some(node)
    }

    /// The recovery reached its point of no return: the nodes are spent.
    fn commit(mut self) -> Vec<netsim::NodeId> {
        self.committed = true;
        std::mem::take(&mut self.nodes)
    }
}

impl Drop for SpareLease<'_> {
    fn drop(&mut self) {
        if !self.committed {
            for &node in &self.nodes {
                self.runtime.register_spare(node);
            }
        }
    }
}

/// A running (or finished) MPI job.
pub struct MpiJob<S> {
    handle: Arc<JobHandle>,
    results: Arc<Mutex<Vec<RankResult<S>>>>,
    sync_thread: Mutex<Option<JoinHandle<()>>>,
    // Tells the sync-checkpoint service to exit.  The job handle retains
    // the entry closure for respawns, and that closure holds a sender
    // clone — so the service cannot rely on channel disconnection alone.
    sync_stop: Arc<std::sync::atomic::AtomicBool>,
}

impl<S: Send + 'static> MpiJob<S> {
    /// The underlying ORTE job handle.
    pub fn handle(&self) -> &Arc<JobHandle> {
        &self.handle
    }

    /// Request a distributed checkpoint (asynchronous/tool path).
    pub fn checkpoint(&self, options: &CheckpointOptions) -> Result<CheckpointOutcome, CrError> {
        self.handle.checkpoint(options)
    }

    /// Ask the job to terminate cooperatively.
    pub fn request_terminate(&self) {
        self.handle.request_terminate();
    }

    /// Ranks that have already reported a failure (the job may still be
    /// running). Used by the recovery supervisor's watchdog.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.results
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Some(Err(_))))
            .map(|(rank, _)| rank)
            .collect()
    }

    /// True once every rank has produced a result (success or failure).
    pub fn is_settled(&self) -> bool {
        self.results.lock().iter().all(|slot| slot.is_some())
    }

    /// Partial restart: restore only `opts.ranks` onto spare nodes while
    /// every other rank stays live — O(failed) work instead of O(job).
    ///
    /// The failed ranks' images are fetched replica-first from the global
    /// snapshot at `global_ref` (stable-storage fallback per image), one
    /// spare node is claimed per distinct failed node, the dead nodes are
    /// fenced, and each rank re-enters through the normal restart path
    /// with a `rejoin` set; survivors then replay the logged in-flight
    /// traffic through the `ReplayBegin`/`ReplayDone` handshake.
    ///
    /// Holds the job's checkpoint serial for the whole recovery, so no
    /// interval can open, commit, or garbage-collect survivor message
    /// logs mid-respawn (an in-flight checkpoint finishes first; a
    /// periodic ticker blocks until the recovery completes).
    ///
    /// Refuses (leaving the job untouched — claimed spares included — so
    /// the caller can fall back to a full restart) when a requested rank
    /// has not actually failed, when the sender-side message log is
    /// disabled, when the requested interval is older than the newest
    /// committed one (survivor logs are GC'd up to its quiesce), when a
    /// survivor's log overflowed `crcp_msg_log_cap_kb` since that quiesce
    /// (the replay backlog would be sequence-gapped), when no spare node
    /// is available, or when `source` is replica-only and an image has no
    /// surviving holder.
    ///
    /// A failing rank only leaves its survivors live when
    /// [`orte::JobHandle::set_partial_recovery`] was set beforehand (the
    /// recovery supervisor does this under `RecoveryPolicy::partial`);
    /// without it a failure terminates the job and there is nothing left
    /// to partially restart.
    pub fn restart_ranks(
        &self,
        global_ref: &Path,
        opts: &RestartOptions,
    ) -> Result<PartialRestartOutcome, CrError> {
        let handle = &self.handle;
        let runtime = handle.runtime();
        let nprocs = handle.nprocs();
        let mut ranks = match &opts.ranks {
            Some(r) if !r.is_empty() => r.clone(),
            _ => {
                return Err(CrError::protocol(
                    "partial restart needs a non-empty rank set (RestartOptions::with_ranks)",
                ))
            }
        };
        ranks.sort_unstable();
        ranks.dedup();
        if let Some(&bad) = ranks.iter().find(|&&r| r >= nprocs) {
            return Err(CrError::protocol(format!(
                "partial restart of rank {bad} in a {nprocs}-rank job"
            )));
        }
        // Only ranks that actually failed can be recovered in place:
        // `respawn_rank` joins the old incarnation's app thread, so
        // fencing a live rank would deadlock (besides rolling it back for
        // no reason).
        {
            let results = self.results.lock();
            if let Some(&live) = ranks
                .iter()
                .find(|&&r| !matches!(results.get(r as usize), Some(Some(Err(_)))))
            {
                return Err(CrError::protocol(format!(
                    "partial restart of rank {live}, which has not failed: only \
                     ranks in MpiJob::failed_ranks() can be recovered in place"
                )));
            }
        }
        let msg_log = handle
            .params()
            .get_bool_or("crcp_msg_log_enabled", false)
            .unwrap_or(false);
        if !msg_log {
            return Err(CrError::Unsupported {
                detail: "partial restart requires the sender-side message log \
                         (crcp_msg_log_enabled=true): without it survivors cannot \
                         replay the in-flight traffic the restarted ranks missed"
                    .into(),
            });
        }
        // Freeze the checkpoint pipeline for the whole recovery: an
        // interval opening mid-respawn could capture inconsistent state,
        // and one *committing* would advance the watermark and GC logged
        // frames the rejoiner still needs. `JobHandle::checkpoint` takes
        // the same lock, so an in-flight request completes first and a
        // concurrent ticker blocks until recovery is done; the
        // write-behind drain then retires any interval still gathering
        // toward its (promotion-time) commit.
        let _ckpt_guard = handle.checkpoint_guard();
        runtime.drain_writebehind();
        let global = GlobalSnapshot::open(global_ref)?;
        let latest = global.latest_interval().ok_or(CrError::BadSnapshot {
            detail: "global snapshot has no committed intervals".into(),
        })?;
        let interval = opts.interval.unwrap_or(latest);
        if !global.intervals().contains(&interval) {
            return Err(CrError::BadSnapshot {
                detail: format!("interval {interval} was never committed"),
            });
        }
        // Survivor message logs are garbage-collected up to the newest
        // committed quiesce, so a rejoiner restored from an older
        // interval could never be replayed gap-free.
        if interval != latest {
            return Err(CrError::Unsupported {
                detail: format!(
                    "partial restart must restore the newest committed interval \
                     ({latest}), not {interval}: survivor message logs only reach \
                     back to the newest commit's quiesce (use a full restart for \
                     older intervals)"
                ),
            });
        }

        // The failed nodes, in rank order. A node can only be fenced
        // whole: every rank placed on it must be in the restart set.
        let placement = handle.placement();
        let rank_set: std::collections::BTreeSet<u32> = ranks.iter().copied().collect();
        let mut old_nodes: Vec<netsim::NodeId> = Vec::new();
        for &r in &ranks {
            let Some(&node) = placement.node_of.get(r as usize) else {
                return Err(CrError::protocol(format!("rank {r} has no placement entry")));
            };
            if !old_nodes.contains(&node) {
                old_nodes.push(node);
            }
        }
        for &node in &old_nodes {
            for (pr, &pn) in placement.node_of.iter().enumerate() {
                if pn == node && !rank_set.contains(&(pr as u32)) {
                    return Err(CrError::protocol(format!(
                        "partial restart of ranks {ranks:?} must also include rank \
                         {pr}: it shares failed node {node}, which is fenced whole"
                    )));
                }
            }
        }

        // Survivors must be able to replay a contiguous backlog to the
        // rejoiners: if any survivor's log overflowed past
        // `crcp_msg_log_cap_kb` since the restore interval's quiesce, the
        // dropped sends can never be resent and the rejoiner would stall
        // on a sequence gap. Refuse while the job is still untouched.
        for r in 0..nprocs {
            if rank_set.contains(&r) {
                continue;
            }
            if handle
                .container(cr_core::Rank(r))
                .probe("crcp.msglog.gap")
                .as_deref()
                == Some("true")
            {
                return Err(CrError::Unsupported {
                    detail: format!(
                        "survivor rank {r}'s message log overflowed \
                         crcp_msg_log_cap_kb since interval {interval}'s quiesce; \
                         its replay backlog is sequence-gapped (raise the cap or \
                         fall back to a full restart)"
                    ),
                });
            }
        }

        // One spare per distinct failed node, held in a lease: any
        // refusal or fetch error below must hand the claimed nodes back
        // to the pool (the "leaving the job untouched" contract), which
        // the lease's Drop does unless the recovery reaches its point of
        // no return and commits.
        let mut spare_of: std::collections::HashMap<u32, netsim::NodeId> =
            std::collections::HashMap::new();
        let mut lease = SpareLease::new(runtime);
        for &node in &old_nodes {
            let spare = lease.claim().ok_or_else(|| CrError::Unsupported {
                detail: format!(
                    "no spare node available to rehost the ranks of failed node \
                     {node} (grow orte_spare_nodes or fall back to a full restart)"
                ),
            })?;
            spare_of.insert(node.0, spare);
        }

        let job = handle.job();
        let launch_params = global.launch_params();
        let params = Arc::new(McaParams::from_dump(
            launch_params.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        ));
        let mut sim_cost = netsim::SimTime::ZERO;
        let mut replica_images = 0u32;
        let mut images: Vec<(u32, opal::ProcessImage)> = Vec::with_capacity(ranks.len());

        if !global.chunk_manifests(interval).is_empty() {
            // Dedup interval: assemble each failed rank's image straight
            // from its chunk manifest.
            let source = match opts.source {
                RestartSource::Auto => orte::store::ChunkSource::Auto,
                RestartSource::Replica => orte::store::ChunkSource::ReplicaOnly,
                RestartSource::Stable => orte::store::ChunkSource::StableOnly,
            };
            let store = orte::store::SnapshotStore::open(runtime, job, global.dir())?;
            for &r in &ranks {
                let rank = cr_core::Rank(r);
                let rendered =
                    global
                        .chunk_manifest(interval, rank)
                        .ok_or_else(|| CrError::BadSnapshot {
                            detail: format!(
                                "dedup interval {interval} has no chunk manifest for rank {r}"
                            ),
                        })?;
                let manifest = codec::ChunkManifest::parse(rendered).map_err(CrError::Codec)?;
                let (image, stats) = store.fetch_image(&manifest, source, opts.verify)?;
                sim_cost += stats.sim_cost;
                if stats.replica_chunks > 0 {
                    replica_images += 1;
                }
                images.push((r, image));
            }
        } else {
            // Chain interval: replica-first with per-image stable
            // fallback, walking only the failed ranks' chains.
            let crs_fw = crs_framework(SelfCallbacks::new());
            let filem = orte::filem::filem_framework()
                .select(&params)
                .map_err(|e| CrError::Unsupported {
                    detail: e.to_string(),
                })?;
            for &r in &ranks {
                let rank = cr_core::Rank(r);
                let spare = placement
                    .node_of
                    .get(r as usize)
                    .and_then(|n| spare_of.get(&n.0))
                    .copied()
                    .ok_or_else(|| CrError::protocol(format!("rank {r} has no claimed spare")))?;
                let chain = global.ckpt_chain(interval, rank)?;
                let mut locals = Vec::with_capacity(chain.len());
                let mut scratch: Vec<std::path::PathBuf> = Vec::with_capacity(chain.len());
                for &ci in &chain {
                    let dest = runtime
                        .node_dir(spare)
                        .join("restart")
                        .join(format!("{job}"))
                        .join(format!("interval_{ci}"))
                        .join(cr_core::snapshot::local_dir_name(rank));
                    let holders = global.replica_holders(ci, rank);
                    let fetched = if opts.source != RestartSource::Stable {
                        orte::replica::fetch_image(runtime, job, ci, rank, &holders)
                    } else {
                        None
                    };
                    if let Some((image, cost)) = fetched {
                        sim_cost += cost;
                        replica_images += 1;
                        image.write_to(&dest)?;
                    } else {
                        if opts.source == RestartSource::Replica {
                            return Err(CrError::BadSnapshot {
                                detail: format!(
                                    "replica-only partial restart impossible: rank {r} \
                                     interval {ci} has no surviving replica holder"
                                ),
                            });
                        }
                        let local = global.local_snapshot(ci, rank)?;
                        let report = filem.copy_all(
                            runtime.netview(),
                            &[orte::filem::CopyRequest {
                                src: local.dir().to_path_buf(),
                                src_node: netsim::NodeId(0),
                                dest: dest.clone(),
                                dest_node: spare,
                            }],
                        )?;
                        sim_cost += report.serialized_cost;
                    }
                    locals.push(cr_core::LocalSnapshot::open(&dest)?);
                    scratch.push(dest);
                }
                let image = if let [local] = locals.as_slice() {
                    let crs = crs_fw
                        .instantiate(local.crs_component(), &params)
                        .map_err(|e| CrError::Unsupported {
                            detail: e.to_string(),
                        })?;
                    crs.restart(local)?
                } else {
                    opal::incr::reassemble(&locals)?
                };
                drop(locals);
                for dir in &scratch {
                    filem.remove_tree(dir)?;
                }
                images.push((r, image));
            }
        }

        // Point of no return: fence the dead nodes, drop the failed
        // ranks' stale endpoint advertisements and result slots, and
        // respawn each rank on its spare with the rejoin set. One
        // simulated launcher session per spare node. The spares are
        // spent from here on.
        let spares = lease.commit();
        for &node in &old_nodes {
            if !runtime.node_failed(node) {
                runtime.kill_daemon(node);
            }
        }
        let rejoin = Arc::new(rank_set);
        for &r in &ranks {
            runtime.modex().remove(job, &format!("pml.{r}"));
            if let Some(slot) = self.results.lock().get_mut(r as usize) {
                *slot = None;
            }
        }
        for (r, image) in images {
            let spare = placement
                .node_of
                .get(r as usize)
                .and_then(|n| spare_of.get(&n.0))
                .copied()
                .ok_or_else(|| CrError::protocol(format!("rank {r} has no claimed spare")))?;
            handle.respawn_rank(cr_core::Rank(r), spare, image, Arc::clone(&rejoin))?;
        }
        let session_ms = handle
            .params()
            .get_parsed_or("plm_rsh_sim_session_ms", 150u64)
            .unwrap_or(150);
        sim_cost += netsim::SimTime::from_millis(session_ms.saturating_mul(spares.len() as u64));

        runtime.tracer().record(
            "ompi.restart",
            &format!(
                "partial: {} of {nprocs} ranks ({ranks:?}) onto spare nodes {:?} from \
                 interval {interval} ({replica_images} images from peer memory, sim {sim_cost})",
                ranks.len(),
                spares.iter().map(|n| n.0).collect::<Vec<_>>(),
            ),
        );
        Ok(PartialRestartOutcome {
            interval,
            ranks,
            spares,
            replica_images,
            sim_cost,
        })
    }

    /// Wait for completion and collect every rank's final state.
    pub fn wait(self) -> Result<Vec<(S, RunEnd)>, CrError> {
        self.handle.join()?;
        self.sync_stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.sync_thread.lock().take() {
            let _ = t.join();
        }
        let mut results = self.results.lock();
        let mut out = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for (rank, slot) in results.drain(..).enumerate() {
            match slot {
                Some(Ok(pair)) => out.push(pair),
                Some(Err(e)) => failures.push(format!("rank {rank}: {e}")),
                None => failures.push(format!("rank {rank}: produced no result")),
            }
        }
        if failures.is_empty() {
            Ok(out)
        } else {
            Err(CrError::protocol(failures.join("; ")))
        }
    }
}

/// The ORTE-layer INC subsystem: quiesces out-of-band runtime services
/// around a checkpoint (here that is bookkeeping plus tracing — the
/// daemons are external to the process).
struct OrteOobFt {
    tracer: Tracer,
}

impl FtEvent for OrteOobFt {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        self.tracer.record("orte.oob.ft_event", &state.to_string());
        Ok(())
    }
}

/// De-duplicating wrapper: `LayerInc` delivers the entering state on the
/// way down and the resulting state on the way up; for Restart both are
/// the same state and protocols must not run twice.
struct OnceFt<T: FtEvent + Send> {
    inner: T,
    last: Option<FtEventState>,
}

impl<T: FtEvent + Send> OnceFt<T> {
    fn new(inner: T) -> Self {
        OnceFt { inner, last: None }
    }
}

impl<T: FtEvent + Send> FtEvent for OnceFt<T> {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        if self.last == Some(state) {
            return Ok(());
        }
        self.last = Some(state);
        self.inner.ft_event(state)
    }
}

/// Per-process MPI bring-up and run (steps 1–8 of the module docs).
fn proc_body<A: MpiApp>(
    app: &A,
    ctx: &LaunchCtx,
    sync_tx: Sender<CheckpointOptions>,
) -> Result<(A::State, RunEnd), MpiError> {
    let runtime = &ctx.runtime;
    let me = ctx.name.rank.0;
    let tracer = runtime.tracer().with_actor(&format!("rank{me}"));
    let params = &ctx.params;
    let nprocs = ctx.nprocs;
    let job = ctx.name.job;

    // 1. CRS.
    let self_cbs = SelfCallbacks::new();
    let crs_fw = crs_framework(Arc::clone(&self_cbs));
    let crs = crs_fw.select(params).map_err(|e| {
        MpiError::Cr(CrError::Unsupported {
            detail: e.to_string(),
        })
    })?;
    ctx.container.set_crs(Arc::from(crs));

    // 2. Endpoint + modex rendezvous.
    let endpoint = runtime.fabric().register(ctx.node);
    runtime.modex().publish(
        job,
        &format!("pml.{me}"),
        endpoint.id().0.to_le_bytes().to_vec(),
    );
    let mut peers = Vec::with_capacity(nprocs as usize);
    for r in 0..nprocs {
        let raw = runtime
            .modex()
            .wait(job, &format!("pml.{r}"), Duration::from_secs(60))
            .map_err(MpiError::Cr)?;
        let bytes: [u8; 8] = raw.as_slice().try_into().map_err(|_| MpiError::Cr(
            CrError::protocol("malformed modex endpoint entry"),
        ))?;
        peers.push(EndpointId(u64::from_le_bytes(bytes)));
    }

    // 3. PML (+ state restore on restart).
    let pml = PmlShared::new(
        me,
        nprocs,
        endpoint,
        peers,
        Arc::clone(ctx.container.gate()),
        tracer.clone(),
    );
    pml.set_terminate_flag(Arc::clone(&ctx.terminate));
    let next_ctx = Arc::new(AtomicU32::new(2));
    let mut restored_app: Option<Vec<u8>> = None;
    if let Some(image) = &ctx.restored {
        pml.restore(image.require_section("pml").map_err(MpiError::Cr)?)
            .map_err(MpiError::Cr)?;
        Mpi::restore_section(&next_ctx, image.require_section("ompi").map_err(MpiError::Cr)?)
            .map_err(MpiError::Cr)?;
        restored_app = Some(image.require_section("app").map_err(MpiError::Cr)?.to_vec());
    }

    // 4. CRCP interposition (the wrapper PML). `ft_cr_enabled false`
    //    removes the interposition entirely — the baseline configuration
    //    of the paper's overhead experiment.
    let ft_enabled = params.get_bool_or("ft_cr_enabled", true).map_err(|e| {
        MpiError::Invalid {
            detail: e.to_string(),
        }
    })?;
    if ft_enabled {
        let crcp_fw = crcp_framework(tracer.clone());
        let component = crcp_fw.select(params).map_err(|e| {
            MpiError::Cr(CrError::Unsupported {
                detail: e.to_string(),
            })
        })?;
        let component: Arc<dyn crate::crcp::CrcpComponent> = Arc::from(component);
        // Replay-log GC keys off the job's commit watermark, not the INC
        // chain's `Continue` (which lands at local commit — too early to
        // drop frames a partial restart may still need to replay).
        component.set_commit_watermark(Arc::clone(&ctx.commit_watermark));
        pml.set_crcp(Some(component));
    }
    // With the sender-side message log on, expose its byte count to the
    // runtime through the container probe channel: the global coordinator
    // records it per interval in the snapshot metadata, and
    // `ompi-snapshot-info` surfaces it.
    let msg_log_enabled = params
        .get_bool_or("crcp_msg_log_enabled", false)
        .unwrap_or(false);
    if msg_log_enabled {
        let p = Arc::clone(&pml);
        ctx.container.set_probe(
            "crcp.msglog",
            Arc::new(move || p.msg_log_stats().1.to_string()),
        );
        // Partial-restart precondition: `restart_ranks` asks every
        // survivor whether `crcp_msg_log_cap_kb` dropped a send since the
        // newest committed quiesce — if so, its replay backlog is
        // sequence-gapped and the partial restart must refuse.
        let p = Arc::clone(&pml);
        let watermark = Arc::clone(&ctx.commit_watermark);
        ctx.container.set_probe(
            "crcp.msglog.gap",
            Arc::new(move || {
                p.msg_log_gapped_since(watermark.load(Ordering::SeqCst))
                    .to_string()
            }),
        );
    }

    // 5. Capture sections.
    let boundary = BoundaryCell::new();
    let b = boundary.clone();
    ctx.container
        .register_capture("app", Arc::new(move || Ok(b.get())));
    let p = Arc::clone(&pml);
    ctx.container
        .register_capture("pml", Arc::new(move || p.capture()));
    let nc = Arc::clone(&next_ctx);
    ctx.container.register_capture(
        "ompi",
        Arc::new(move || Ok(codec::to_bytes(&nc.load(Ordering::SeqCst))?)),
    );

    // 6. INC stack: OPAL (bottom, runs the CRS), ORTE, OMPI (top).
    let mut opal_layer = LayerInc::new("opal", tracer.clone());
    if params.get_bool_or("opal_progress", false).unwrap_or(false) {
        opal_layer = opal_layer.subsystem(
            "progress",
            Arc::new(Mutex::new(ProgressEngine::start(Duration::from_millis(2)))),
        );
    }
    ctx.container.install_opal_inc(opal_layer);

    let orte_layer = LayerInc::new("orte", tracer.clone()).subsystem(
        "oob",
        Arc::new(Mutex::new(OnceFt::new(OrteOobFt {
            tracer: tracer.clone(),
        }))),
    );
    ctx.container
        .inc()
        .register(move |prev| orte_layer.build(prev, None));

    let ompi_layer = LayerInc::new("ompi", tracer.clone())
        .subsystem(
            "crcp",
            Arc::new(Mutex::new(OnceFt::new(CrcpFtHandle::with_container(
                Arc::clone(&pml),
                Arc::clone(&ctx.container),
            )))),
        )
        .subsystem(
            "pml",
            Arc::new(Mutex::new(OnceFt::new(PmlFtHandle::new(Arc::clone(&pml))))),
        );
    ctx.container
        .inc()
        .register(move |prev| ompi_layer.build(prev, None));

    // The application-facing handle.
    let mpi = Mpi::new(
        Arc::clone(&pml),
        next_ctx,
        Arc::clone(&ctx.container),
        Arc::clone(&self_cbs),
        Arc::clone(&ctx.terminate),
        Some(sync_tx),
        tracer.clone(),
    );

    // 7. Restart notification through the whole chain.
    if ctx.restored.is_some() {
        tracer.record("ompi.init.restart", &format!("rank {me}"));
        ctx.container
            .inc()
            .deliver(FtEventState::Restart)
            .map_err(MpiError::Cr)?;
        if let Some(crs) = ctx.container.crs() {
            crs.post_event(FtEventState::Restart).map_err(MpiError::Cr)?;
        }
        // Partial restart: this rank rejoins a job whose other ranks are
        // still live. Run the replay handshake — each survivor re-points
        // its channel at the fresh endpoint and resends the logged frames
        // this incarnation never saw — before the application resumes.
        if let Some(rejoin) = &ctx.rejoin {
            crate::crcp::rejoin_replay(&pml, rejoin, &tracer).map_err(MpiError::Cr)?;
        }
    }

    // 8. Run.
    let result = run_app(app, &mpi, &boundary, restored_app);

    // Finalize: close the checkpoint window before tearing anything down.
    ctx.container.disable_checkpointing("MPI_Finalize");
    result
}

fn make_proc_main<A: MpiApp>(
    app: Arc<A>,
    results: Arc<Mutex<Vec<RankResult<A::State>>>>,
    sync_tx: Sender<CheckpointOptions>,
) -> ProcMain {
    Arc::new(move |ctx: LaunchCtx| {
        let rank = ctx.name.rank.index();
        // A panicking rank must still record a result, retire its gate,
        // and pull the job down — otherwise peers blocked in receive wait
        // loops poll forever and the job never settles.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            proc_body(app.as_ref(), &ctx, sync_tx.clone())
        }));
        let outcome = match caught {
            Ok(r) => r.map_err(|e| e.to_string()),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".into());
                Err(format!("application panicked: {msg}"))
            }
        };
        if outcome.is_err() {
            // Unblock peers waiting on messages this rank will never send
            // — unless an active recoverer has declared itself on the job
            // (`JobHandle::set_partial_recovery`): then the survivors must
            // stay live while only this rank is restored and caught back
            // up over the replay handshake. The message-log MCA param
            // alone is NOT enough: with the log on but nobody performing
            // partial restarts, a silent skip here would hang `wait()`
            // forever.
            if !ctx.partial_recovery.load(Ordering::SeqCst) {
                ctx.terminate.store(true, Ordering::SeqCst);
            }
        }
        results.lock()[rank] = Some(outcome);
        // The application thread is done with the checkpoint window.
        ctx.container.gate().retire();
    })
}

fn spawn_job<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    config: RunConfig,
    restored: Option<Vec<opal::ProcessImage>>,
    resume_floor: Option<u64>,
) -> Result<MpiJob<A::State>, CrError> {
    let results: Arc<Mutex<Vec<RankResult<A::State>>>> =
        Arc::new(Mutex::new((0..config.nprocs).map(|_| None).collect()));
    let (sync_tx, sync_rx) = crossbeam::channel::unbounded::<CheckpointOptions>();
    let spec = JobSpec {
        nprocs: config.nprocs,
        params: Arc::clone(&config.params),
        proc_main: make_proc_main(app, Arc::clone(&results), sync_tx),
        restored,
        resume_floor,
    };
    let handle = Arc::new(launch(runtime, spec)?);

    // Synchronous-request service: application ranks queue checkpoint
    // requests; this thread plays the global coordinator for them.
    let service_handle = Arc::clone(&handle);
    let tracer = runtime.tracer().clone();
    let sync_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop = Arc::clone(&sync_stop);
    let sync_thread = std::thread::Builder::new()
        .name("ompi-sync-ckpt".into())
        .spawn(move || loop {
            match sync_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(options) => match service_handle.checkpoint(&options) {
                    Ok(outcome) => tracer.record(
                        "ompi.sync_ckpt.done",
                        &outcome.global_snapshot.display().to_string(),
                    ),
                    Err(e) => tracer.record("ompi.sync_ckpt.failed", &e.to_string()),
                },
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if stop.load(std::sync::atomic::Ordering::SeqCst) {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        })
        .map_err(|e| CrError::Io {
            context: "spawning sync checkpoint service".into(),
            detail: e.to_string(),
        })?;

    Ok(MpiJob {
        handle,
        results,
        sync_thread: Mutex::new(Some(sync_thread)),
        sync_stop,
    })
}

/// Launch `app` on `config.nprocs` ranks (the `mpirun` equivalent).
pub fn mpirun<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    config: RunConfig,
) -> Result<MpiJob<A::State>, CrError> {
    spawn_job(runtime, app, config, None, None)
}

/// Where restart pulls the process images from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartSource {
    /// Try surviving peer-memory replicas first, fall back to stable
    /// storage per rank. The default, and what the recovery supervisor
    /// uses: after `k` or fewer node losses every image comes from
    /// memory; beyond that the orphaned ranks come from disk.
    #[default]
    Auto,
    /// Peer-memory replicas only; fail if any rank's image has no
    /// surviving holder. Proves the fast path works with stable storage
    /// unavailable.
    Replica,
    /// Stable storage only — the paper's original broadcast path.
    Stable,
}

impl std::str::FromStr for RestartSource {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(RestartSource::Auto),
            "replica" => Ok(RestartSource::Replica),
            "stable" => Ok(RestartSource::Stable),
            other => Err(format!(
                "unknown restart source {other:?} (expected auto, replica, or stable)"
            )),
        }
    }
}

/// What a partial restart did: which interval the failed ranks resumed
/// from, where they landed, and the simulated cost of the recovery
/// (image fetches plus one launcher session per spare — the quantity the
/// `restart_latency` bench compares against a full relaunch).
#[derive(Debug, Clone)]
pub struct PartialRestartOutcome {
    /// Interval the restarted ranks resumed from.
    pub interval: u64,
    /// The ranks recovered, ascending.
    pub ranks: Vec<u32>,
    /// Spare nodes claimed, one per distinct failed node.
    pub spares: Vec<netsim::NodeId>,
    /// How many images (or chunk sets) came out of peer memory.
    pub replica_images: u32,
    /// Simulated recovery cost along the critical path.
    pub sim_cost: netsim::SimTime,
}

/// Everything a restart can be told, in one struct — the single
/// [`restart`] entry point replaces the old
/// `restart_from` / `restart_from_with_source` sprawl (both survive as
/// deprecated wrappers). `Default` restores the newest committed interval
/// from the best available tier with digest verification on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartOptions {
    /// Which tier(s) images may come from (`ompi-restart --source`).
    pub source: RestartSource,
    /// Interval to restore; `None` picks the newest committed one.
    pub interval: Option<u64>,
    /// Digest-verify chunks fetched from peer memory on the dedup path
    /// (`ompi-restart --no-verify` clears it; the stable tier always
    /// verifies on read).
    pub verify: bool,
    /// Restrict recovery to these ranks (partial restart). Only honoured
    /// by [`MpiJob::restart_ranks`] on a live job; the whole-job
    /// [`restart`] entry point refuses it.
    pub ranks: Option<Vec<u32>>,
}

impl Default for RestartOptions {
    fn default() -> Self {
        RestartOptions {
            source: RestartSource::Auto,
            interval: None,
            verify: true,
            ranks: None,
        }
    }
}

impl RestartOptions {
    /// Restore from a specific interval instead of the newest.
    pub fn at_interval(mut self, interval: u64) -> Self {
        self.interval = Some(interval);
        self
    }

    /// Restrict (or widen) where images may come from.
    pub fn with_source(mut self, source: RestartSource) -> Self {
        self.source = source;
        self
    }

    /// Skip digest verification of peer-memory chunks.
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Recover only these ranks ([`MpiJob::restart_ranks`]).
    pub fn with_ranks(mut self, ranks: Vec<u32>) -> Self {
        self.ranks = Some(ranks);
        self
    }
}

/// Restart a job from a global snapshot reference (the `ompi-restart`
/// equivalent). Only the directory is needed: the original launch
/// parameters are read from the snapshot metadata (paper §4).
/// `RestartOptions::default()` restores the most recent committed
/// interval, peer memory first ([`RestartSource::Auto`]).
///
/// Intervals committed through the dedup chunk store
/// (`filem_dedup_enabled`) restore straight from their recorded chunk
/// manifests: each rank's image is assembled chunk-by-chunk from the
/// replica tier and/or the stable [`opal::store::ChunkStore`] — O(1)
/// manifest→chunk fetches with digest verification, never a base→delta
/// chain replay.
pub fn restart<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    global_ref: &Path,
    opts: RestartOptions,
) -> Result<MpiJob<A::State>, CrError> {
    if opts.ranks.is_some() {
        return Err(CrError::Unsupported {
            detail: "restart() relaunches the whole job; recovering specific ranks \
                     goes through MpiJob::restart_ranks on the still-live job"
                .into(),
        });
    }
    let source = opts.source;
    let interval = opts.interval;
    if source != RestartSource::Replica {
        // Join any in-flight early-release gather first: either it
        // promotes its interval to globally committed (and we restart
        // from it) or it failed (and the interval stays invisible, so we
        // fall back to the newest globally committed one). Restart never
        // reads a partially gathered interval either way.
        runtime.drain_writebehind();
    }
    let global = GlobalSnapshot::open(global_ref)?;
    let interval = match interval {
        Some(i) => i,
        None => global.latest_interval().ok_or(CrError::BadSnapshot {
            detail: "global snapshot has no committed intervals".into(),
        })?,
    };
    if !global.intervals().contains(&interval) {
        return Err(CrError::BadSnapshot {
            detail: format!("interval {interval} was never committed"),
        });
    }
    let launch_params = global.launch_params();
    let params = Arc::new(McaParams::from_dump(
        launch_params.iter().map(|(k, v)| (k.as_str(), v.as_str())),
    ));

    // Dedup intervals carry chunk manifests instead of (or alongside)
    // chain links: restore them through the content-addressed store and
    // skip the whole preload/chain machinery below.
    if !global.chunk_manifests(interval).is_empty() {
        return restart_dedup(runtime, app, &global, interval, &opts, params);
    }

    // The placement is predicted with the same deterministic PLM mapping
    // the relaunch will use, so each rank's image lands on the node it
    // will restart on.
    let plm = orte::plm::plm_framework()
        .select(&params)
        .map_err(|e| CrError::Unsupported {
            detail: e.to_string(),
        })?;
    let placement = plm.map_job(global.nprocs(), runtime.topology(), &params)?;
    let filem = orte::filem::filem_framework()
        .select(&params)
        .map_err(|e| CrError::Unsupported {
            detail: e.to_string(),
        })?;

    let job = global.job();
    let nprocs = global.nprocs();
    let node_for = |rank: cr_core::Rank| {
        placement
            .node_of
            .get(rank.index())
            .copied()
            .ok_or_else(|| CrError::BadSnapshot {
                detail: format!("placement has no node for rank {rank}"),
            })
    };
    let dest_of = |rank: cr_core::Rank, node: netsim::NodeId, chain_interval: u64| {
        runtime
            .node_dir(node)
            .join("restart")
            .join(format!("{job}"))
            .join(format!("interval_{chain_interval}"))
            .join(cr_core::snapshot::local_dir_name(rank))
    };

    // With incremental checkpointing an interval's context may be a delta
    // whose restore needs its full-image base plus every delta in between:
    // the chain walk reads the links the coordinator recorded at commit.
    // Fully-full intervals yield single-element chains and behave exactly
    // as before.
    let chains: Vec<Vec<u64>> = (0..nprocs)
        .map(|r| global.ckpt_chain(interval, cr_core::Rank(r)))
        .collect::<Result<_, _>>()?;
    let chain_images: usize = chains.iter().map(|c| c.len()).sum();

    // Phase 1 — peer memory: pull every needed (rank, chain interval)
    // image from the first surviving replica holder recorded in the
    // snapshot metadata. Snapshots gathered without the replica component
    // have no holder records, so every image simply misses and phase 2
    // does all the work.
    let mut dirs: std::collections::HashMap<(u32, u64), std::path::PathBuf> =
        std::collections::HashMap::with_capacity(chain_images);
    let mut replica_hits = 0u32;
    if source != RestartSource::Stable {
        let mut replica_cost = netsim::SimTime::ZERO;
        let mut replica_bytes = 0u64;
        for (r, chain) in chains.iter().enumerate() {
            let rank = cr_core::Rank(r as u32);
            for &ci in chain {
                let holders = global.replica_holders(ci, rank);
                if holders.is_empty() {
                    continue;
                }
                if let Some((image, cost)) =
                    orte::replica::fetch_image(runtime, job, ci, rank, &holders)
                {
                    let dest = dest_of(rank, node_for(rank)?, ci);
                    replica_bytes += image.total_bytes();
                    replica_cost += cost;
                    image.write_to(&dest)?;
                    dirs.insert((rank.0, ci), dest);
                    replica_hits += 1;
                }
            }
        }
        if replica_hits > 0 {
            runtime.tracer().record(
                "filem.replica.preload",
                &format!(
                    "{replica_hits} images, {replica_bytes} bytes, sim {replica_cost}"
                ),
            );
        }
    }

    // Phase 2 — stable storage: whatever peer memory could not serve.
    let mut missing: Vec<(cr_core::Rank, u64)> = Vec::new();
    for (r, chain) in chains.iter().enumerate() {
        for &ci in chain {
            if !dirs.contains_key(&(r as u32, ci)) {
                missing.push((cr_core::Rank(r as u32), ci));
            }
        }
    }
    if !missing.is_empty() {
        if source == RestartSource::Replica {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "replica-only restart impossible: {} of {chain_images} needed \
                     images have no surviving replica holder",
                    missing.len()
                ),
            });
        }
        // Never race an in-flight write-behind drain to the files.
        runtime.drain_writebehind();
        let mut preload_batch = Vec::with_capacity(missing.len());
        for (rank, ci) in &missing {
            let local = global.local_snapshot(*ci, *rank)?;
            let node = node_for(*rank)?;
            let dest = dest_of(*rank, node, *ci);
            preload_batch.push(orte::filem::CopyRequest {
                src: local.dir().to_path_buf(),
                src_node: netsim::NodeId(0), // stable storage is served by the head node
                dest: dest.clone(),
                dest_node: node,
            });
            dirs.insert((rank.0, *ci), dest);
        }
        let report = filem.copy_all(runtime.netview(), &preload_batch)?;
        runtime.tracer().record(
            "filem.preload",
            &format!(
                "{} files, {} bytes, sim {}",
                report.files, report.bytes, report.serialized_cost
            ),
        );
    }

    // Rebuild every rank's process image from its node-local copies.
    // Single-element chains restore through the CRS component named in the
    // local snapshot metadata (which may differ from the restart-time
    // selection parameters); delta chains replay base + deltas and verify
    // the reassembled image against the newest context's chunk manifest.
    let crs_fw = crs_framework(SelfCallbacks::new());
    let mut images = Vec::with_capacity(nprocs as usize);
    let mut preloaded_dirs: Vec<std::path::PathBuf> = Vec::with_capacity(chain_images);
    for (r, chain) in chains.iter().enumerate() {
        let mut locals = Vec::with_capacity(chain.len());
        for ci in chain {
            let dir = dirs.remove(&(r as u32, *ci)).ok_or_else(|| CrError::BadSnapshot {
                detail: format!("rank {r} has no restart image for interval {ci}"),
            })?;
            locals.push(cr_core::LocalSnapshot::open(&dir)?);
            preloaded_dirs.push(dir);
        }
        if let [local] = locals.as_slice() {
            let crs = crs_fw
                .instantiate(local.crs_component(), &params)
                .map_err(|e| CrError::Unsupported {
                    detail: e.to_string(),
                })?;
            images.push(crs.restart(local)?);
        } else {
            images.push(opal::incr::reassemble(&locals)?);
        }
    }
    // The preloaded scratch copies served their purpose (FILEM remove).
    for dir in &preloaded_dirs {
        filem.remove_tree(dir)?;
    }
    runtime.tracer().record(
        "ompi.restart",
        &format!(
            "{} ranks from {} interval {interval} ({replica_hits} images from peer memory)",
            images.len(),
            global_ref.display()
        ),
    );

    let config = RunConfig { nprocs, params };
    spawn_job(runtime, app, config, Some(images), Some(interval))
}

/// Restore a dedup-committed interval: per rank, parse the recorded chunk
/// manifest and assemble the image straight out of the chunk tiers —
/// peer memory first under [`RestartSource::Auto`], with per-chunk
/// fallback to the stable store. No local snapshot directories are
/// materialized and no base→delta chain is replayed; restart cost is one
/// manifest parse plus one fetch per distinct chunk.
fn restart_dedup<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    global: &GlobalSnapshot,
    interval: u64,
    opts: &RestartOptions,
    params: Arc<McaParams>,
) -> Result<MpiJob<A::State>, CrError> {
    let source = match opts.source {
        RestartSource::Auto => orte::store::ChunkSource::Auto,
        RestartSource::Replica => orte::store::ChunkSource::ReplicaOnly,
        RestartSource::Stable => orte::store::ChunkSource::StableOnly,
    };
    let store = orte::store::SnapshotStore::open(runtime, global.job(), global.dir())?;
    let nprocs = global.nprocs();
    let mut images = Vec::with_capacity(nprocs as usize);
    let mut replica_chunks = 0usize;
    let mut stable_chunks = 0usize;
    for r in 0..nprocs {
        let rank = cr_core::Rank(r);
        let rendered =
            global
                .chunk_manifest(interval, rank)
                .ok_or_else(|| CrError::BadSnapshot {
                    detail: format!(
                        "dedup interval {interval} has no chunk manifest for rank {r}"
                    ),
                })?;
        let manifest = codec::ChunkManifest::parse(rendered).map_err(CrError::Codec)?;
        let (image, stats) = store.fetch_image(&manifest, source, opts.verify)?;
        replica_chunks += stats.replica_chunks;
        stable_chunks += stats.stable_chunks;
        images.push(image);
    }
    runtime.tracer().record(
        "ompi.restart",
        &format!(
            "{nprocs} ranks from {} interval {interval} (dedup: {replica_chunks} \
             chunks from peer memory, {stable_chunks} from stable)",
            global.dir().display()
        ),
    );
    let config = RunConfig { nprocs, params };
    spawn_job(runtime, app, config, Some(images), Some(interval))
}

/// Thin wrapper kept for source compatibility; use [`restart`].
#[deprecated(note = "use restart(runtime, app, global_ref, RestartOptions::default())")]
pub fn restart_from<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    global_ref: &Path,
    interval: Option<u64>,
) -> Result<MpiJob<A::State>, CrError> {
    restart(
        runtime,
        app,
        global_ref,
        RestartOptions {
            interval,
            ..RestartOptions::default()
        },
    )
}

/// Thin wrapper kept for source compatibility; use [`restart`].
#[deprecated(note = "use restart(runtime, app, global_ref, RestartOptions { source, .. })")]
pub fn restart_from_with_source<A: MpiApp>(
    runtime: &Runtime,
    app: Arc<A>,
    global_ref: &Path,
    interval: Option<u64>,
    source: RestartSource,
) -> Result<MpiJob<A::State>, CrError> {
    restart(
        runtime,
        app,
        global_ref,
        RestartOptions {
            source,
            interval,
            verify: true,
            ranks: None,
        },
    )
}
