//! PML — the Point-to-point Management Layer.
//!
//! All MPI traffic (collectives included — they decompose into
//! point-to-point) flows through here, which is exactly why the paper
//! interposes the CRCP coordination protocol on this layer: "the wrapper
//! PML component allows the OMPI CRCP components the opportunity to take
//! action before and after each message is processed" (§6.3). Our
//! equivalent is the optional [`CrcpComponent`] hook consulted on every
//! send and receive; building with the hook absent gives the
//! "infrastructure disabled" baseline of the paper's §7 overhead
//! experiment.
//!
//! # The op log (restart correctness)
//!
//! BLCR restores a checkpointed process mid-instruction; safe Rust cannot.
//! Instead, applications run as *steps* (see [`crate::app`]) and the PML
//! records every completed operation of the current step in an **op log**.
//! A checkpoint taken mid-step captures (a) the application state as of
//! the last step boundary and (b) the op log. On restart the step is
//! re-executed from the boundary state with the log armed: each recorded
//! operation *replays* — receives return their recorded payloads, sends
//! become no-ops (their messages were already delivered and are accounted
//! by the restored counters) — until the log is exhausted, after which
//! execution continues live, typically re-entering the operation that was
//! blocked when the checkpoint struck. Replay validates every operation's
//! parameters against the record and fails loudly on divergence, which
//! catches non-deterministic application steps.
//!
//! # Sequence numbers
//!
//! Every application frame carries a per-(sender, receiver) sequence
//! number. Receivers drop frames whose sequence they have already counted
//! — the duplicate-suppression that makes message-logging recovery (the
//! `crcp logger` component) idempotent.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netsim::{Endpoint, EndpointId, Fabric, NetError};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use cr_core::{CrError, FtEvent, FtEventState, Tracer};
use opal::SafePointGate;

use crate::crcp::CrcpComponent;
use crate::error::MpiError;
use crate::frame::{decode_app, decode_crcp, encode_app, AppFrame, CrcpMsg, CLASS_APP, CLASS_CRCP};

/// How long a blocking operation waits on the wire before re-checking the
/// safe-point gate.
const WIRE_POLL: Duration = Duration::from_micros(200);

/// A posted (not yet matched) non-blocking receive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostedRecv {
    /// Request id.
    pub req: u64,
    /// Communicator context.
    pub ctx: u32,
    /// Source filter (`None` = any source).
    pub src: Option<u32>,
    /// Tag filter (`None` = any tag).
    pub tag: Option<u32>,
}

/// A message retained by the sender-based logging protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedSend {
    /// Destination world rank.
    pub dst: u32,
    /// Communicator context.
    pub ctx: u32,
    /// MPI tag.
    pub tag: u32,
    /// Sequence number of the send.
    pub seq: u64,
    /// Payload.
    pub payload: Vec<u8>,
}

/// One completed operation of the current application step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpRecord {
    /// A completed blocking send.
    Send {
        /// Destination world rank.
        dst: u32,
        /// Communicator context.
        ctx: u32,
        /// MPI tag.
        tag: u32,
        /// Payload length (for divergence detection).
        len: u64,
    },
    /// A completed blocking receive.
    Recv {
        /// Context the receive was posted on.
        ctx: u32,
        /// Source filter.
        src: Option<u32>,
        /// Tag filter.
        tag: Option<u32>,
        /// The matched frame.
        frame: AppFrame,
    },
    /// A completed non-blocking send initiation.
    Isend {
        /// Assigned request id.
        req: u64,
        /// Destination world rank.
        dst: u32,
        /// Communicator context.
        ctx: u32,
        /// MPI tag.
        tag: u32,
        /// Payload length.
        len: u64,
    },
    /// A completed non-blocking receive initiation.
    Irecv {
        /// Assigned request id.
        req: u64,
        /// Communicator context.
        ctx: u32,
        /// Source filter.
        src: Option<u32>,
        /// Tag filter.
        tag: Option<u32>,
    },
    /// A completed wait.
    Wait {
        /// The request waited on.
        req: u64,
        /// `Some` for receive requests, `None` for send requests.
        frame: Option<AppFrame>,
    },
    /// A completed blocking probe (message metadata observed, nothing
    /// consumed).
    Probe {
        /// Context probed.
        ctx: u32,
        /// Source filter.
        src: Option<u32>,
        /// Tag filter.
        tag: Option<u32>,
        /// Matched sender.
        found_src: u32,
        /// Matched tag.
        found_tag: u32,
        /// Matched payload length.
        len: u64,
    },
}

/// A quiesce-point mark in the partial-restart message log: `mark` is
/// the log length when `interval` quiesced. Once `interval` reaches
/// global commit, entries below `mark` can never be needed by a replay
/// (a partial restart restores from the latest committed interval).
#[derive(Debug, Clone, Copy)]
pub struct MsgLogMark {
    /// SNAPC interval the mark belongs to (`u64::MAX` for standalone
    /// coordination rounds with no SNAPC in sight).
    pub interval: u64,
    /// `msg_log` length at that interval's quiesce.
    pub mark: u64,
    /// `crcp_msg_log_cap_kb` truncated the log in the window *ending* at
    /// this quiesce (i.e. since the previous mark). A partial restart
    /// from any interval quiesced before this window would replay a
    /// sequence-gapped backlog and must refuse; once `interval` reaches
    /// global commit the window precedes the restore point and the bit
    /// leaves with the mark.
    pub overflow: bool,
}

/// The serializable PML state — the "pml" section of the process image.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PmlState {
    /// Received application frames not yet matched by any receive.
    pub unmatched: VecDeque<AppFrame>,
    /// Posted non-blocking receives.
    pub posted: Vec<PostedRecv>,
    /// Completed requests not yet waited on (`None` payload = send).
    pub completed: BTreeMap<u64, Option<AppFrame>>,
    /// Application messages sent, per destination world rank.
    pub sent_counts: Vec<u64>,
    /// Application messages received (into the PML), per source rank.
    pub recv_counts: Vec<u64>,
    /// Next request id.
    pub next_req: u64,
    /// Op log of the current application step.
    pub step_log: Vec<OpRecord>,
    /// Sender-based message log (used by the `logger` CRCP component).
    pub sender_log: Vec<LoggedSend>,
    /// Partial-restart message log (`crcp_msg_log_enabled`): every
    /// application send since the last global-commit GC, replayed by
    /// survivors to a restarted peer over the `ReplayBegin` handshake.
    pub msg_log: Vec<LoggedSend>,
    /// Payload bytes currently retained in `msg_log`.
    pub msg_log_bytes: u64,
    /// Quiesce marks awaiting global commit: for each in-flight (or
    /// failed-before-commit) checkpoint interval, the `msg_log` length at
    /// its quiesce. Entries below a mark are dropped only once the job
    /// publishes that mark's interval as globally committed — a
    /// checkpoint that dies mid-interval must leave the log intact for a
    /// partial restart from the previous commit. Never persisted: a
    /// restarted incarnation re-marks from scratch.
    #[serde(skip)]
    pub msg_log_marks: Vec<MsgLogMark>,
    /// Interval of the checkpoint currently coordinating, stashed by the
    /// INC handle before the CRCP runs (the component has no view of
    /// SNAPC's numbering). `None` outside a checkpoint or in standalone
    /// use.
    #[serde(skip)]
    pub ckpt_interval: Option<u64>,
    /// Set when `crcp_msg_log_cap_kb` truncated the log in the current
    /// window (since the last quiesce mark); each quiesce folds it into
    /// its [`MsgLogMark::overflow`] bit and clears it. A partial restart
    /// that would need the missing entries must refuse — see
    /// [`PmlShared::msg_log_gapped_since`], which `MpiJob::restart_ranks`
    /// probes on every survivor before touching the job.
    pub msg_log_overflow: bool,
    /// CRCP control messages awaiting the coordination protocol.
    pub crcp_inbox: VecDeque<CrcpMsg>,
    /// Replay position into `step_log` (never persisted: restarts always
    /// replay from the beginning).
    #[serde(skip)]
    pub replay_cursor: Option<usize>,
}

impl PmlState {
    fn new(nprocs: u32) -> Self {
        PmlState {
            sent_counts: vec![0; nprocs as usize],
            recv_counts: vec![0; nprocs as usize],
            ..Default::default()
        }
    }

    fn matches(frame: &AppFrame, ctx: u32, src: Option<u32>, tag: Option<u32>) -> bool {
        frame.ctx == ctx
            && src.map(|s| s == frame.src).unwrap_or(true)
            && tag.map(|t| t == frame.tag).unwrap_or(true)
    }

    /// Pop the earliest unmatched frame matching the spec.
    fn match_unmatched(&mut self, ctx: u32, src: Option<u32>, tag: Option<u32>) -> Option<AppFrame> {
        let idx = self
            .unmatched
            .iter()
            .position(|f| Self::matches(f, ctx, src, tag))?;
        self.unmatched.remove(idx)
    }

    /// Match an arriving frame against posted receives (posted-first MPI
    /// semantics). Returns the satisfied request id.
    fn match_posted(&mut self, frame: &AppFrame) -> Option<u64> {
        let idx = self
            .posted
            .iter()
            .position(|p| Self::matches(frame, p.ctx, p.src, p.tag))?;
        Some(self.posted.remove(idx).req)
    }

    /// Take the next replay record, deactivating replay when the log is
    /// exhausted.
    fn replay_next(&mut self) -> Option<OpRecord> {
        let cursor = self.replay_cursor?;
        let record = self.step_log.get(cursor).cloned();
        match record {
            Some(r) => {
                let next = cursor + 1;
                self.replay_cursor = if next >= self.step_log.len() {
                    None
                } else {
                    Some(next)
                };
                Some(r)
            }
            None => {
                self.replay_cursor = None;
                None
            }
        }
    }

    /// True while operations replay from the log.
    pub fn replaying(&self) -> bool {
        self.replay_cursor.is_some()
    }
}

/// The per-process PML, shared between the application thread and the
/// checkpoint notification thread.
pub struct PmlShared {
    me: u32,
    nprocs: u32,
    endpoint: Endpoint,
    fabric: Fabric,
    /// Raw [`EndpointId`] of each rank. Atomic because a survivor
    /// re-points a restarted peer's entry from inside `classify` (state
    /// lock held) when its `ReplayBegin` arrives.
    peers: Vec<AtomicU64>,
    gate: Arc<SafePointGate>,
    tracer: Tracer,
    state: Mutex<PmlState>,
    crcp: RwLock<Option<Arc<dyn CrcpComponent>>>,
    /// Job-wide cooperative termination flag. Blocked operations observe
    /// it and unwind with [`MpiError::Terminating`] — without this, a rank
    /// that exits at a step boundary after checkpoint-and-terminate would
    /// leave peers blocked in receives forever.
    terminate: RwLock<Option<Arc<std::sync::atomic::AtomicBool>>>,
}

impl PmlShared {
    /// Build a PML for rank `me` of `nprocs`, with `peers[r]` being rank
    /// `r`'s fabric endpoint.
    pub fn new(
        me: u32,
        nprocs: u32,
        endpoint: Endpoint,
        peers: Vec<EndpointId>,
        gate: Arc<SafePointGate>,
        tracer: Tracer,
    ) -> Arc<Self> {
        assert_eq!(peers.len(), nprocs as usize, "one endpoint per rank");
        let fabric = endpoint.fabric().clone();
        let peers = peers.into_iter().map(|e| AtomicU64::new(e.0)).collect();
        Arc::new(PmlShared {
            me,
            nprocs,
            endpoint,
            fabric,
            peers,
            gate,
            tracer,
            state: Mutex::new(PmlState::new(nprocs)),
            crcp: RwLock::new(None),
            terminate: RwLock::new(None),
        })
    }

    /// Install the job's termination flag (done at init).
    pub fn set_terminate_flag(&self, flag: Arc<std::sync::atomic::AtomicBool>) {
        *self.terminate.write() = Some(flag);
    }

    /// True once the job was asked to terminate.
    fn terminating(&self) -> bool {
        self.terminate
            .read()
            .as_ref()
            .map(|f| f.load(std::sync::atomic::Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// This rank.
    pub fn me(&self) -> u32 {
        self.me
    }

    /// This rank's own fabric endpoint id (announced to survivors in the
    /// partial-restart rejoin handshake).
    pub fn endpoint_id(&self) -> EndpointId {
        self.endpoint.id()
    }

    /// World size.
    pub fn nprocs(&self) -> u32 {
        self.nprocs
    }

    /// The safe-point gate (shared with the container).
    pub fn gate(&self) -> &Arc<SafePointGate> {
        &self.gate
    }

    /// Install (or remove) the CRCP interposition component.
    pub fn set_crcp(&self, crcp: Option<Arc<dyn CrcpComponent>>) {
        *self.crcp.write() = crcp;
    }

    /// The installed CRCP component, if any.
    pub fn crcp(&self) -> Option<Arc<dyn CrcpComponent>> {
        self.crcp.read().clone()
    }

    /// Run `f` with the state locked (CRCP protocols use this).
    pub fn with_state<R>(&self, f: impl FnOnce(&mut PmlState) -> R) -> R {
        f(&mut self.state.lock())
    }

    // -- wire helpers -------------------------------------------------------

    /// Rank `dst`'s current fabric endpoint.
    fn peer(&self, dst: u32) -> EndpointId {
        EndpointId(self.peers[dst as usize].load(Ordering::SeqCst))
    }

    fn classify(&self, st: &mut PmlState, delivery: netsim::Delivery) -> Result<(), MpiError> {
        match delivery.tag {
            CLASS_APP => {
                let frame = decode_app(&delivery.payload)?;
                let src = frame.src as usize;
                if src >= st.recv_counts.len() {
                    return Err(MpiError::PeerLost {
                        detail: format!("frame from unknown rank {}", frame.src),
                    });
                }
                if frame.seq < st.recv_counts[src] {
                    // Duplicate (message-logging resend): drop silently.
                    return Ok(());
                }
                if frame.seq > st.recv_counts[src] {
                    return Err(MpiError::PeerLost {
                        detail: format!(
                            "sequence gap from rank {}: expected {}, got {}",
                            frame.src, st.recv_counts[src], frame.seq
                        ),
                    });
                }
                st.recv_counts[src] += 1;
                if let Some(req) = st.match_posted(&frame) {
                    st.completed.insert(req, Some(frame));
                } else {
                    st.unmatched.push_back(frame);
                }
                Ok(())
            }
            CLASS_CRCP => {
                let msg = decode_crcp(&delivery.payload)?;
                if let CrcpMsg::ReplayBegin { from, endpoint } = msg {
                    // Handled inline: a ReplayBegin can arrive at any
                    // moment (its sender just restarted) and must never
                    // linger in the inbox, where it would trip the
                    // clean-checkpoint invariant in `PmlFtHandle`.
                    return self.handle_replay_begin(st, from, endpoint);
                }
                st.crcp_inbox.push_back(msg);
                Ok(())
            }
            other => Err(MpiError::PeerLost {
                detail: format!("unknown traffic class {other}"),
            }),
        }
    }

    /// A restarted rank announced its replacement endpoint: re-point the
    /// peer table, replay every logged message it may have missed
    /// (duplicate suppression at the receiver discards the ones its
    /// restored counters already account for), and fence the backlog
    /// with `ReplayDone` so the rejoiner knows its channel is caught up.
    fn handle_replay_begin(
        &self,
        st: &mut PmlState,
        from: u32,
        endpoint: u64,
    ) -> Result<(), MpiError> {
        if from as usize >= st.recv_counts.len() {
            return Err(MpiError::PeerLost {
                detail: format!("ReplayBegin from unknown rank {from}"),
            });
        }
        self.peers[from as usize].store(endpoint, Ordering::SeqCst);
        let mut resent = 0u64;
        for logged in st.msg_log.iter().filter(|l| l.dst == from) {
            self.resend_logged(logged)?;
            resent += 1;
        }
        self.tracer.record(
            "crcp.replay.resent",
            &format!("rank {}: replayed {resent} logged sends to restarted rank {from}", self.me),
        );
        self.send_crcp(from, &CrcpMsg::ReplayDone { from: self.me })
    }

    /// Drain everything currently queued on the endpoint (non-blocking).
    fn pump_locked(&self, st: &mut PmlState) -> Result<(), MpiError> {
        loop {
            match self.endpoint.try_recv() {
                Ok(d) => self.classify(st, d)?,
                Err(NetError::Empty) => return Ok(()),
                Err(e) => {
                    return Err(MpiError::PeerLost {
                        detail: format!("endpoint failed: {e}"),
                    })
                }
            }
        }
    }

    /// Block up to `timeout` for one wire event and classify it. Returns
    /// whether anything arrived. Used by CRCP coordination loops.
    pub fn poll_wire_once(&self, timeout: Duration) -> Result<bool, MpiError> {
        match self.endpoint.recv_timeout(timeout) {
            Ok(d) => {
                self.classify(&mut self.state.lock(), d)?;
                Ok(true)
            }
            Err(NetError::Timeout) => Ok(false),
            Err(e) => Err(MpiError::PeerLost {
                detail: format!("endpoint failed: {e}"),
            }),
        }
    }

    /// Send a CRCP control message to `dst` (not counted by bookmarks).
    pub fn send_crcp(&self, dst: u32, msg: &CrcpMsg) -> Result<(), MpiError> {
        let wire = crate::frame::encode_crcp(msg)?;
        self.fabric
            .send(self.endpoint.id(), self.peer(dst), CLASS_CRCP, wire)
            .map_err(|e| MpiError::PeerLost {
                detail: format!("CRCP send to rank {dst}: {e}"),
            })?;
        Ok(())
    }

    /// Resend a logged application frame verbatim (message-logging
    /// recovery). Bypasses counters: the original send was already
    /// counted.
    pub fn resend_logged(&self, logged: &LoggedSend) -> Result<(), MpiError> {
        let wire = encode_app(self.me, logged.ctx, logged.tag, logged.seq, &logged.payload);
        self.fabric
            .send(self.endpoint.id(), self.peer(logged.dst), CLASS_APP, wire)
            .map_err(|e| MpiError::PeerLost {
                detail: format!("resend to rank {}: {e}", logged.dst),
            })?;
        Ok(())
    }

    // -- blocking operations -----------------------------------------------

    fn check_rank(&self, rank: u32) -> Result<(), MpiError> {
        if rank >= self.nprocs {
            return Err(MpiError::Invalid {
                detail: format!("rank {rank} out of range (world size {})", self.nprocs),
            });
        }
        Ok(())
    }

    /// Blocking standard-mode send.
    pub fn send(&self, ctx: u32, dst: u32, tag: u32, payload: &[u8]) -> Result<(), MpiError> {
        self.check_rank(dst)?;
        {
            let mut st = self.state.lock();
            if let Some(record) = st.replay_next() {
                return match record {
                    OpRecord::Send {
                        dst: rd,
                        ctx: rc,
                        tag: rt,
                        len,
                    } if rd == dst && rc == ctx && rt == tag && len == payload.len() as u64 => {
                        Ok(())
                    }
                    other => Err(MpiError::ReplayDiverged {
                        detail: format!("expected {other:?}, got send(dst={dst}, ctx={ctx}, tag={tag}, len={})", payload.len()),
                    }),
                };
            }
        }
        // New sends are held at the gate between a checkpoint request and
        // its completion (paper §6.5's MPI_SEND restriction).
        self.gate.checkpoint_point();
        let crcp = self.crcp();
        let mut st = self.state.lock();
        let seq = st.sent_counts[dst as usize];
        let logged_before = st.msg_log.len();
        if let Some(c) = &crcp {
            c.on_send(&mut st, self.me, dst, ctx, tag, seq, payload);
        }
        let in_msg_log = st.msg_log.len() > logged_before;
        let wire = encode_app(self.me, ctx, tag, seq, payload);
        match self.fabric.send(self.endpoint.id(), self.peer(dst), CLASS_APP, wire) {
            Ok(_) => {}
            Err(NetError::Unreachable { .. }) if in_msg_log => {
                // The peer's endpoint is gone — it died. The frame is in
                // the partial-restart message log, so the send succeeds
                // from the survivor's point of view: the logged copy is
                // replayed over the `ReplayBegin` handshake once the rank
                // rejoins on a spare node. Sequence numbers keep
                // advancing so the log stays gap-free.
            }
            Err(e) => {
                return Err(MpiError::PeerLost {
                    detail: format!("send to rank {dst}: {e}"),
                })
            }
        }
        st.sent_counts[dst as usize] += 1;
        st.step_log.push(OpRecord::Send {
            dst,
            ctx,
            tag,
            len: payload.len() as u64,
        });
        Ok(())
    }

    /// Blocking receive. `src`/`tag` of `None` mean any.
    pub fn recv(
        &self,
        ctx: u32,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<AppFrame, MpiError> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        loop {
            let crcp = self.crcp();
            {
                let mut st = self.state.lock();
                if let Some(record) = st.replay_next() {
                    return match record {
                        OpRecord::Recv {
                            ctx: rc,
                            src: rs,
                            tag: rt,
                            frame,
                        } if rc == ctx && rs == src && rt == tag => Ok(frame),
                        other => Err(MpiError::ReplayDiverged {
                            detail: format!(
                                "expected {other:?}, got recv(ctx={ctx}, src={src:?}, tag={tag:?})"
                            ),
                        }),
                    };
                }
                self.pump_locked(&mut st)?;
                if let Some(frame) = st.match_unmatched(ctx, src, tag) {
                    if let Some(c) = &crcp {
                        c.on_recv(&mut st, &frame);
                    }
                    st.step_log.push(OpRecord::Recv {
                        ctx,
                        src,
                        tag,
                        frame: frame.clone(),
                    });
                    return Ok(frame);
                }
            }
            self.gate.checkpoint_point();
            match self.endpoint.recv_timeout(WIRE_POLL) {
                Ok(d) => self.classify(&mut self.state.lock(), d)?,
                Err(NetError::Timeout) => {
                    if self.terminating() {
                        return Err(MpiError::Terminating);
                    }
                }
                Err(e) => {
                    return Err(MpiError::PeerLost {
                        detail: format!("endpoint failed while receiving: {e}"),
                    })
                }
            }
        }
    }

    // -- non-blocking operations ---------------------------------------------

    /// Non-blocking send: completes immediately (the fabric buffers).
    pub fn isend(&self, ctx: u32, dst: u32, tag: u32, payload: &[u8]) -> Result<u64, MpiError> {
        self.check_rank(dst)?;
        {
            let mut st = self.state.lock();
            if let Some(record) = st.replay_next() {
                return match record {
                    OpRecord::Isend {
                        req,
                        dst: rd,
                        ctx: rc,
                        tag: rt,
                        len,
                    } if rd == dst && rc == ctx && rt == tag && len == payload.len() as u64 => {
                        Ok(req)
                    }
                    other => Err(MpiError::ReplayDiverged {
                        detail: format!("expected {other:?}, got isend(dst={dst})"),
                    }),
                };
            }
        }
        self.gate.checkpoint_point();
        let crcp = self.crcp();
        let mut st = self.state.lock();
        let seq = st.sent_counts[dst as usize];
        if let Some(c) = &crcp {
            c.on_send(&mut st, self.me, dst, ctx, tag, seq, payload);
        }
        let wire = encode_app(self.me, ctx, tag, seq, payload);
        self.fabric
            .send(self.endpoint.id(), self.peer(dst), CLASS_APP, wire)
            .map_err(|e| MpiError::PeerLost {
                detail: format!("isend to rank {dst}: {e}"),
            })?;
        st.sent_counts[dst as usize] += 1;
        let req = st.next_req;
        st.next_req += 1;
        st.completed.insert(req, None);
        st.step_log.push(OpRecord::Isend {
            req,
            dst,
            ctx,
            tag,
            len: payload.len() as u64,
        });
        Ok(req)
    }

    /// Non-blocking receive: posts a match request.
    pub fn irecv(&self, ctx: u32, src: Option<u32>, tag: Option<u32>) -> Result<u64, MpiError> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let mut st = self.state.lock();
        if let Some(record) = st.replay_next() {
            return match record {
                OpRecord::Irecv {
                    req,
                    ctx: rc,
                    src: rs,
                    tag: rt,
                } if rc == ctx && rs == src && rt == tag => Ok(req),
                other => Err(MpiError::ReplayDiverged {
                    detail: format!("expected {other:?}, got irecv(ctx={ctx})"),
                }),
            };
        }
        self.pump_locked(&mut st)?;
        let req = st.next_req;
        st.next_req += 1;
        if let Some(frame) = st.match_unmatched(ctx, src, tag) {
            st.completed.insert(req, Some(frame));
        } else {
            st.posted.push(PostedRecv { req, ctx, src, tag });
        }
        st.step_log.push(OpRecord::Irecv { req, ctx, src, tag });
        Ok(req)
    }

    /// Wait for a request. Returns the frame for receive requests, `None`
    /// for send requests.
    pub fn wait(&self, req: u64) -> Result<Option<AppFrame>, MpiError> {
        loop {
            {
                let mut st = self.state.lock();
                if let Some(record) = st.replay_next() {
                    return match record {
                        OpRecord::Wait { req: rr, frame } if rr == req => {
                            // The restored state still holds the completion
                            // (it was consumed at original execution, so it
                            // is not present; nothing to clean up).
                            Ok(frame)
                        }
                        other => Err(MpiError::ReplayDiverged {
                            detail: format!("expected {other:?}, got wait({req})"),
                        }),
                    };
                }
                self.pump_locked(&mut st)?;
                if let Some(entry) = st.completed.remove(&req) {
                    st.step_log.push(OpRecord::Wait {
                        req,
                        frame: entry.clone(),
                    });
                    return Ok(entry);
                }
                if !st.posted.iter().any(|p| p.req == req) {
                    return Err(MpiError::BadRequest { request: req });
                }
            }
            self.gate.checkpoint_point();
            match self.endpoint.recv_timeout(WIRE_POLL) {
                Ok(d) => self.classify(&mut self.state.lock(), d)?,
                Err(NetError::Timeout) => {
                    if self.terminating() {
                        return Err(MpiError::Terminating);
                    }
                }
                Err(e) => {
                    return Err(MpiError::PeerLost {
                        detail: format!("endpoint failed while waiting: {e}"),
                    })
                }
            }
        }
    }

    /// Non-blocking completion test.
    pub fn test(&self, req: u64) -> Result<Option<Option<AppFrame>>, MpiError> {
        let mut st = self.state.lock();
        if st.replaying() {
            // During replay, completion state is determined by the log:
            // peek whether the next record is this request's wait.
            let cursor = st.replay_cursor.expect("replaying");
            return match st.step_log.get(cursor) {
                Some(OpRecord::Wait { req: rr, frame }) if *rr == req => {
                    let frame = frame.clone();
                    st.replay_next();
                    Ok(Some(frame))
                }
                _ => Ok(None),
            };
        }
        self.pump_locked(&mut st)?;
        if let Some(entry) = st.completed.remove(&req) {
            st.step_log.push(OpRecord::Wait {
                req,
                frame: entry.clone(),
            });
            return Ok(Some(entry));
        }
        if !st.posted.iter().any(|p| p.req == req) {
            return Err(MpiError::BadRequest { request: req });
        }
        Ok(None)
    }

    /// Blocking probe: wait until a matching message is available and
    /// return its metadata `(src, tag, len)` without consuming it. Logged
    /// for replay like every other operation.
    pub fn probe(
        &self,
        ctx: u32,
        src: Option<u32>,
        tag: Option<u32>,
    ) -> Result<(u32, u32, u64), MpiError> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        loop {
            {
                let mut st = self.state.lock();
                if let Some(record) = st.replay_next() {
                    return match record {
                        OpRecord::Probe {
                            ctx: rc,
                            src: rs,
                            tag: rt,
                            found_src,
                            found_tag,
                            len,
                        } if rc == ctx && rs == src && rt == tag => {
                            Ok((found_src, found_tag, len))
                        }
                        other => Err(MpiError::ReplayDiverged {
                            detail: format!("expected {other:?}, got probe(ctx={ctx})"),
                        }),
                    };
                }
                self.pump_locked(&mut st)?;
                let found = st
                    .unmatched
                    .iter()
                    .find(|f| PmlState::matches(f, ctx, src, tag))
                    .map(|f| (f.src, f.tag, f.payload.len() as u64));
                if let Some((found_src, found_tag, len)) = found {
                    st.step_log.push(OpRecord::Probe {
                        ctx,
                        src,
                        tag,
                        found_src,
                        found_tag,
                        len,
                    });
                    return Ok((found_src, found_tag, len));
                }
            }
            self.gate.checkpoint_point();
            match self.endpoint.recv_timeout(WIRE_POLL) {
                Ok(d) => self.classify(&mut self.state.lock(), d)?,
                Err(NetError::Timeout) => {
                    if self.terminating() {
                        return Err(MpiError::Terminating);
                    }
                }
                Err(e) => {
                    return Err(MpiError::PeerLost {
                        detail: format!("endpoint failed while probing: {e}"),
                    })
                }
            }
        }
    }

    // -- step boundaries and checkpoint integration ----------------------------

    /// Mark an application step boundary: the op log of the finished step
    /// is discarded (its effects are in the application's boundary state).
    pub fn begin_step(&self) {
        let mut st = self.state.lock();
        debug_assert!(
            !st.replaying(),
            "step boundary reached while still replaying"
        );
        st.step_log.clear();
        st.replay_cursor = None;
    }

    /// True while operations replay from a restored log.
    pub fn is_replaying(&self) -> bool {
        self.state.lock().replaying()
    }

    /// Serialize the PML state (the "pml" image section). Called by the
    /// capture registry with the application thread parked.
    pub fn capture(&self) -> Result<Vec<u8>, CrError> {
        let st = self.state.lock();
        Ok(codec::to_bytes(&*st)?)
    }

    /// Restore state from a captured section, arming replay if the
    /// captured step had completed operations.
    pub fn restore(&self, bytes: &[u8]) -> Result<(), CrError> {
        let mut restored: PmlState = codec::from_bytes(bytes)?;
        if restored.sent_counts.len() != self.nprocs as usize {
            return Err(CrError::BadSnapshot {
                detail: format!(
                    "pml section is for a {}-rank world, this job has {}",
                    restored.sent_counts.len(),
                    self.nprocs
                ),
            });
        }
        restored.replay_cursor = None;
        *self.state.lock() = restored;
        Ok(())
    }

    /// Arm replay of the restored step log. Called by the application
    /// runner immediately before re-entering the partial step; arming is
    /// deferred so restart-time housekeeping traffic (message-logging
    /// resends, rendezvous) does not consume replay records.
    pub fn arm_replay(&self) {
        let mut st = self.state.lock();
        st.replay_cursor = if st.step_log.is_empty() { None } else { Some(0) };
    }

    /// Partial-restart message-log footprint: `(entries, payload bytes,
    /// overflowed)`. Read by the container probe that feeds the
    /// per-interval accounting recorded in snapshot metadata.
    pub fn msg_log_stats(&self) -> (u64, u64, bool) {
        let st = self.state.lock();
        (st.msg_log.len() as u64, st.msg_log_bytes, st.msg_log_overflow)
    }

    /// True when `crcp_msg_log_cap_kb` dropped at least one send *after*
    /// the newest globally committed interval's quiesce (`watermark` is
    /// the job's commit watermark: highest committed interval + 1). A
    /// partial restart restores from that interval, so a gap in any
    /// later window means this rank cannot replay a contiguous backlog
    /// and the restart must refuse. Overflow folded into the committed
    /// interval's own mark (or older ones) precedes the restore point
    /// and is ignored.
    pub fn msg_log_gapped_since(&self, watermark: u64) -> bool {
        let st = self.state.lock();
        st.msg_log_overflow
            || st
                .msg_log_marks
                .iter()
                .any(|m| m.overflow && m.interval >= watermark)
    }

    /// Messages sent to `dst` so far.
    pub fn sent_count(&self, dst: u32) -> u64 {
        self.state.lock().sent_counts[dst as usize]
    }

    /// Messages received from `src` so far.
    pub fn recv_count(&self, src: u32) -> u64 {
        self.state.lock().recv_counts[src as usize]
    }
}

/// The PML's INC subsystem handle: receives `ft_event` notifications in
/// the OMPI layer chain (after the CRCP — paper §5.3 ordering).
pub struct PmlFtHandle {
    pml: Arc<PmlShared>,
    tracer: Tracer,
}

impl PmlFtHandle {
    /// Wrap a PML for INC registration.
    pub fn new(pml: Arc<PmlShared>) -> Self {
        let tracer = pml.tracer.clone();
        PmlFtHandle { pml, tracer }
    }
}

impl FtEvent for PmlFtHandle {
    fn ft_event(&mut self, state: FtEventState) -> Result<(), CrError> {
        self.tracer
            .record("ompi.pml.ft_event", &state.to_string());
        match state {
            FtEventState::Checkpoint => {
                // Channels were quiesced by the CRCP (which ran first); the
                // simulated interconnect needs no teardown, but we verify
                // the invariant that no CRCP control traffic is left over.
                let leftovers = self.pml.with_state(|st| st.crcp_inbox.len());
                if leftovers != 0 {
                    return Err(CrError::protocol(format!(
                        "{leftovers} unconsumed CRCP control messages at checkpoint"
                    )));
                }
                Ok(())
            }
            FtEventState::Continue | FtEventState::Restart | FtEventState::Error => Ok(()),
        }
    }
}
