//! Wire format of MPI traffic over the fabric.
//!
//! Two traffic classes share each process's fabric endpoint, distinguished
//! by the netsim tag:
//!
//! * **application frames** ([`CLASS_APP`]) — MPI point-to-point messages
//!   (collectives decompose into these). A fixed 20-byte header carries
//!   the communicator context, the MPI tag, and a per-(sender, receiver)
//!   sequence number used for duplicate suppression after message-logging
//!   recovery.
//! * **CRCP control frames** ([`CLASS_CRCP`]) — coordination protocol
//!   traffic (bookmarks, received-count exchanges). Not counted by the
//!   bookmarks themselves.

use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::MpiError;

/// netsim tag for application frames.
pub const CLASS_APP: u64 = 1;
/// netsim tag for CRCP control frames.
pub const CLASS_CRCP: u64 = 2;

/// Bytes of the application frame header.
pub const HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// A decoded application frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppFrame {
    /// Sender's world rank.
    pub src: u32,
    /// Communicator context id.
    pub ctx: u32,
    /// MPI tag.
    pub tag: u32,
    /// Per-(src, dst) sequence number.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Encode an application frame into wire bytes.
pub fn encode_app(src: u32, ctx: u32, tag: u32, seq: u64, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&src.to_le_bytes());
    buf.extend_from_slice(&ctx.to_le_bytes());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// Decode wire bytes into an application frame.
pub fn decode_app(bytes: &[u8]) -> Result<AppFrame, MpiError> {
    if bytes.len() < HEADER_LEN {
        return Err(MpiError::PeerLost {
            detail: format!("application frame too short: {} bytes", bytes.len()),
        });
    }
    Ok(AppFrame {
        src: u32::from_le_bytes(bytes[0..4].try_into().expect("4")),
        ctx: u32::from_le_bytes(bytes[4..8].try_into().expect("4")),
        tag: u32::from_le_bytes(bytes[8..12].try_into().expect("4")),
        seq: u64::from_le_bytes(bytes[12..20].try_into().expect("8")),
        payload: bytes[HEADER_LEN..].to_vec(),
    })
}

/// CRCP control messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrcpMsg {
    /// Bookmark: "I have sent you `sent` application messages so far"
    /// (the coordinated protocol's whole-message refinement of LAM/MPI's
    /// byte counts).
    Bookmark {
        /// Sender's world rank.
        from: u32,
        /// Messages sent from `from` to the destination so far.
        sent: u64,
    },
    /// Received-count exchange: "I have received `have` application
    /// messages from you" (message-logging garbage collection at
    /// checkpoint, and resend negotiation at restart).
    Have {
        /// Sender's world rank.
        from: u32,
        /// Messages received from the destination so far.
        have: u64,
    },
    /// Exit barrier for the coordinated protocol: "my channels are
    /// quiesced". A rank that finished draining must not resume the
    /// application (and send new traffic) until every peer has verified
    /// its bookmarks, or the new traffic lands in a slower peer's drain
    /// window and overruns its bookmark.
    Quiesced {
        /// Sender's world rank.
        from: u32,
    },
    /// Partial-restart replay handshake, restarted rank -> survivor:
    /// "I was restored from the last committed interval onto a new
    /// endpoint; re-point your channel at `endpoint` and replay every
    /// logged message you sent me since that interval's quiesce". The
    /// survivor pauses only for the replay, not for a job-wide rollback.
    ReplayBegin {
        /// The restarted rank.
        from: u32,
        /// Its new fabric endpoint id (the old one died with the node).
        endpoint: u64,
    },
    /// Partial-restart replay handshake, survivor -> restarted rank:
    /// "my logged backlog for you has been resent; everything I send
    /// after this is new traffic". Per-channel FIFO ordering makes this
    /// the fence between replayed and fresh messages.
    ReplayDone {
        /// The surviving rank that finished replaying.
        from: u32,
    },
}

/// Encode a CRCP control message.
pub fn encode_crcp(msg: &CrcpMsg) -> Result<Bytes, MpiError> {
    Ok(Bytes::from(codec::to_bytes(msg)?))
}

/// Decode a CRCP control message.
pub fn decode_crcp(bytes: &[u8]) -> Result<CrcpMsg, MpiError> {
    Ok(codec::from_bytes(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_frame_roundtrip() {
        let wire = encode_app(3, 7, 42, 19, b"payload");
        let frame = decode_app(&wire).unwrap();
        assert_eq!(
            frame,
            AppFrame {
                src: 3,
                ctx: 7,
                tag: 42,
                seq: 19,
                payload: b"payload".to_vec(),
            }
        );
    }

    #[test]
    fn empty_payload_roundtrip() {
        let wire = encode_app(0, 0, 0, 0, &[]);
        assert_eq!(wire.len(), HEADER_LEN);
        let frame = decode_app(&wire).unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn short_frame_rejected() {
        assert!(decode_app(&[1, 2, 3]).is_err());
    }

    #[test]
    fn crcp_roundtrip() {
        for msg in [
            CrcpMsg::Bookmark { from: 1, sent: 99 },
            CrcpMsg::Have { from: 2, have: 0 },
            CrcpMsg::Quiesced { from: 3 },
            CrcpMsg::ReplayBegin {
                from: 4,
                endpoint: 77,
            },
            CrcpMsg::ReplayDone { from: 5 },
        ] {
            let wire = encode_crcp(&msg).unwrap();
            assert_eq!(decode_crcp(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn classes_are_distinct() {
        assert_ne!(CLASS_APP, CLASS_CRCP);
    }
}
