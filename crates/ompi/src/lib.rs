//! OMPI — the MPI layer (simulated), plus the CRCP framework.
//!
//! This crate provides the MPI-1-style programming interface the paper's
//! applications use (point-to-point, communicators, collectives layered
//! over point-to-point), and the checkpoint/restart machinery that lives
//! at the MPI layer:
//!
//! * [`pml`] — the Point-to-point Management Layer: matching, ordered
//!   reliable delivery over the simulated fabric, non-blocking requests,
//!   and the **op log** that makes partially-executed application steps
//!   replayable after a restart (our substitute for BLCR's native stack
//!   capture — see DESIGN.md).
//! * [`crcp`] — the Checkpoint/Restart Coordination Protocol framework,
//!   interposed on every PML operation as a wrapper (paper §6.3):
//!   `coord` (LAM/MPI-style bookmark exchange operating on whole
//!   messages), `logger` (pessimistic sender-based message logging — the
//!   paper's future-work extension), and `none` (passthrough, used to
//!   measure the interposition overhead of §7).
//! * [`comm`] + [`coll`] — communicators and collectives layered over
//!   point-to-point.
//! * [`mpi`] — the typed per-process MPI handle ([`mpi::Mpi`]).
//! * [`app`] — the resumable application model ([`app::MpiApp`]) and its
//!   step runner with boundary-state capture.
//! * [`init`] — `MPI_Init`/`MPI_Finalize` equivalents, the `mpirun`-style
//!   launcher, and restart from a global snapshot reference (with FILEM
//!   preload of the checkpoint files onto the target nodes).
//! * [`supervisor`] — automatic, transparent recovery (the paper's §8
//!   future-work item): periodic checkpoints, failure watchdog, restart
//!   from the last snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod coll;
pub mod comm;
pub mod crcp;
pub mod error;
pub mod frame;
pub mod init;
pub mod mpi;
pub mod pml;
pub mod supervisor;

pub use app::{MpiApp, StepOutcome};
pub use comm::Comm;
pub use error::MpiError;
#[allow(deprecated)]
pub use init::{restart_from, restart_from_with_source};
pub use init::{mpirun, restart, MpiJob, RestartOptions, RestartSource, RunConfig};
pub use mpi::Mpi;
