//! Communicators.
//!
//! A communicator is a group of world ranks plus a pair of context ids
//! that isolate its traffic: one context for point-to-point, one for
//! collectives (so an application receive with a wildcard tag can never
//! match a collective's internal message — the same separation real MPI
//! implementations use).
//!
//! Context ids must agree across all members. They are derived
//! collectively (an allreduce over each process's next free id), so
//! creation is deterministic and therefore replay-safe after a restart.

use serde::{Deserialize, Serialize};

use crate::error::MpiError;

/// A communicator handle.
///
/// `Comm` is plain serializable data: applications may store communicators
/// in their checkpointable state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comm {
    ctx_p2p: u32,
    ctx_coll: u32,
    /// World ranks of the members, indexed by communicator rank.
    ranks: Vec<u32>,
    /// This process's rank within the communicator.
    my_rank: u32,
}

impl Comm {
    /// `MPI_COMM_WORLD` for a world of `nprocs`, viewed from `me`.
    pub fn world(nprocs: u32, me: u32) -> Comm {
        Comm {
            ctx_p2p: 0,
            ctx_coll: 1,
            ranks: (0..nprocs).collect(),
            my_rank: me,
        }
    }

    /// Build a communicator from parts (used by dup/split).
    pub(crate) fn from_parts(ctx_base: u32, ranks: Vec<u32>, my_world_rank: u32) -> Comm {
        let my_rank = ranks
            .iter()
            .position(|r| *r == my_world_rank)
            .expect("creator must be a member") as u32;
        Comm {
            ctx_p2p: ctx_base,
            ctx_coll: ctx_base + 1,
            ranks,
            my_rank,
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> u32 {
        self.my_rank
    }

    /// Number of members.
    pub fn size(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Point-to-point context id.
    pub fn ctx_p2p(&self) -> u32 {
        self.ctx_p2p
    }

    /// Collective context id.
    pub fn ctx_coll(&self) -> u32 {
        self.ctx_coll
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: u32) -> Result<u32, MpiError> {
        self.ranks
            .get(r as usize)
            .copied()
            .ok_or_else(|| MpiError::Invalid {
                detail: format!("rank {r} out of range for communicator of size {}", self.size()),
            })
    }

    /// Communicator rank of world rank `w`, if a member.
    pub fn comm_rank_of_world(&self, w: u32) -> Option<u32> {
        self.ranks.iter().position(|r| *r == w).map(|i| i as u32)
    }

    /// Member world ranks.
    pub fn members(&self) -> &[u32] {
        &self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_basics() {
        let c = Comm::world(4, 2);
        assert_eq!(c.rank(), 2);
        assert_eq!(c.size(), 4);
        assert_eq!(c.ctx_p2p(), 0);
        assert_eq!(c.ctx_coll(), 1);
        assert_eq!(c.world_rank(3).unwrap(), 3);
        assert!(c.world_rank(4).is_err());
        assert_eq!(c.comm_rank_of_world(1), Some(1));
    }

    #[test]
    fn from_parts_translates_ranks() {
        // Sub-communicator of world ranks {1, 3, 5}, viewed from world 3.
        let c = Comm::from_parts(10, vec![1, 3, 5], 3);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.ctx_p2p(), 10);
        assert_eq!(c.ctx_coll(), 11);
        assert_eq!(c.world_rank(2).unwrap(), 5);
        assert_eq!(c.comm_rank_of_world(4), None);
    }

    #[test]
    #[should_panic(expected = "member")]
    fn from_parts_requires_membership() {
        let _ = Comm::from_parts(10, vec![1, 3], 2);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Comm::from_parts(6, vec![0, 2], 2);
        let bytes = codec::to_bytes(&c).unwrap();
        let back: Comm = codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }
}
