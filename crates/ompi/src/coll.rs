//! Collectives layered over point-to-point.
//!
//! The paper's first implementation supports "MPI collective routines when
//! internally layered over point-to-point communication" (§3.1) — which is
//! exactly what makes them checkpointable for free: every collective below
//! decomposes into PML sends/receives that the CRCP wrapper observes,
//! counts, and (on restart) replays. Hardware collectives are the paper's
//! canonical example of an operation that would force a process to declare
//! itself non-checkpointable.
//!
//! Algorithms: dissemination barrier, binomial-tree broadcast and reduce,
//! linear (root-centric) gather/scatter, and pairwise all-to-all. Reduce
//! combines in a fixed tree order, so operators need only be associative.

use crate::comm::Comm;
use crate::error::MpiError;
use crate::pml::PmlShared;

/// Tag space inside the collective context: `op << 8 | round`.
fn coll_tag(op: u32, round: u32) -> u32 {
    debug_assert!(round < 256);
    (op << 8) | round
}

const OP_BARRIER: u32 = 1;
const OP_BCAST: u32 = 2;
const OP_REDUCE: u32 = 3;
const OP_GATHER: u32 = 4;
const OP_SCATTER: u32 = 5;
const OP_ALLTOALL: u32 = 6;

/// Dissemination barrier: `ceil(log2(n))` rounds, each rank sends to
/// `(r + 2^k) mod n` and receives from `(r - 2^k) mod n`.
pub fn barrier(pml: &PmlShared, comm: &Comm) -> Result<(), MpiError> {
    let n = comm.size();
    if n <= 1 {
        return Ok(());
    }
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    let mut round = 0u32;
    let mut dist = 1u32;
    while dist < n {
        let dst = comm.world_rank((me + dist) % n)?;
        let src = comm.world_rank((me + n - dist) % n)?;
        pml.send(ctx, dst, coll_tag(OP_BARRIER, round), &[])?;
        pml.recv(ctx, Some(src), Some(coll_tag(OP_BARRIER, round)))?;
        dist <<= 1;
        round += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast of a byte buffer from `root`.
pub fn bcast_bytes(
    pml: &PmlShared,
    comm: &Comm,
    root: u32,
    data: &mut Vec<u8>,
) -> Result<(), MpiError> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::Invalid {
            detail: format!("bcast root {root} out of range"),
        });
    }
    if n <= 1 {
        return Ok(());
    }
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    let vrank = (me + n - root) % n;

    // Receive from the parent (the highest set bit of vrank).
    let mut mask = 1u32;
    while mask < n {
        if vrank & mask != 0 {
            let vsrc = vrank - mask;
            let src = comm.world_rank((vsrc + root) % n)?;
            let frame = pml.recv(ctx, Some(src), Some(coll_tag(OP_BCAST, 0)))?;
            *data = frame.payload;
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < n && vrank & mask == 0 {
            let vdst = vrank + mask;
            let dst = comm.world_rank((vdst + root) % n)?;
            pml.send(ctx, dst, coll_tag(OP_BCAST, 0), data)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Binomial-tree reduction to `root`. `combine(acc, incoming)` must be
/// associative; evaluation order is fixed by the tree.
pub fn reduce_bytes(
    pml: &PmlShared,
    comm: &Comm,
    root: u32,
    mine: Vec<u8>,
    combine: &mut dyn FnMut(Vec<u8>, Vec<u8>) -> Result<Vec<u8>, MpiError>,
) -> Result<Option<Vec<u8>>, MpiError> {
    let n = comm.size();
    if root >= n {
        return Err(MpiError::Invalid {
            detail: format!("reduce root {root} out of range"),
        });
    }
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    let vrank = (me + n - root) % n;
    let mut acc = mine;
    let mut mask = 1u32;
    while mask < n {
        if vrank & mask == 0 {
            let vsrc = vrank | mask;
            if vsrc < n {
                let src = comm.world_rank((vsrc + root) % n)?;
                let frame = pml.recv(ctx, Some(src), Some(coll_tag(OP_REDUCE, 0)))?;
                acc = combine(acc, frame.payload)?;
            }
        } else {
            let vdst = vrank - mask;
            let dst = comm.world_rank((vdst + root) % n)?;
            pml.send(ctx, dst, coll_tag(OP_REDUCE, 0), &acc)?;
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Root-centric gather: the root receives every rank's buffer, in
/// communicator-rank order.
pub fn gather_bytes(
    pml: &PmlShared,
    comm: &Comm,
    root: u32,
    mine: &[u8],
) -> Result<Option<Vec<Vec<u8>>>, MpiError> {
    let n = comm.size();
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    if me != root {
        pml.send(ctx, comm.world_rank(root)?, coll_tag(OP_GATHER, 0), mine)?;
        return Ok(None);
    }
    let mut parts = Vec::with_capacity(n as usize);
    for r in 0..n {
        if r == root {
            parts.push(mine.to_vec());
        } else {
            let frame = pml.recv(ctx, Some(comm.world_rank(r)?), Some(coll_tag(OP_GATHER, 0)))?;
            parts.push(frame.payload);
        }
    }
    Ok(Some(parts))
}

/// Root-centric scatter: rank `r` receives `parts[r]`.
pub fn scatter_bytes(
    pml: &PmlShared,
    comm: &Comm,
    root: u32,
    parts: Option<&[Vec<u8>]>,
) -> Result<Vec<u8>, MpiError> {
    let n = comm.size();
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    if me == root {
        let parts = parts.ok_or_else(|| MpiError::Invalid {
            detail: "scatter root must supply parts".into(),
        })?;
        if parts.len() != n as usize {
            return Err(MpiError::Invalid {
                detail: format!("scatter needs {n} parts, got {}", parts.len()),
            });
        }
        for r in 0..n {
            if r != root {
                pml.send(
                    ctx,
                    comm.world_rank(r)?,
                    coll_tag(OP_SCATTER, 0),
                    &parts[r as usize],
                )?;
            }
        }
        Ok(parts[root as usize].clone())
    } else {
        let frame = pml.recv(ctx, Some(comm.world_rank(root)?), Some(coll_tag(OP_SCATTER, 0)))?;
        Ok(frame.payload)
    }
}

/// All-gather: every rank ends with every rank's buffer (gather to rank 0,
/// then broadcast of the concatenation).
pub fn allgather_bytes(
    pml: &PmlShared,
    comm: &Comm,
    mine: &[u8],
) -> Result<Vec<Vec<u8>>, MpiError> {
    let gathered = gather_bytes(pml, comm, 0, mine)?;
    let mut blob: Vec<u8> = match gathered {
        Some(parts) => codec::to_bytes(&parts)?,
        None => Vec::new(),
    };
    bcast_bytes(pml, comm, 0, &mut blob)?;
    Ok(codec::from_bytes(&blob)?)
}

/// All-reduce: reduce to rank 0, then broadcast the result.
pub fn allreduce_bytes(
    pml: &PmlShared,
    comm: &Comm,
    mine: Vec<u8>,
    combine: &mut dyn FnMut(Vec<u8>, Vec<u8>) -> Result<Vec<u8>, MpiError>,
) -> Result<Vec<u8>, MpiError> {
    let reduced = reduce_bytes(pml, comm, 0, mine, combine)?;
    let mut blob = reduced.unwrap_or_default();
    bcast_bytes(pml, comm, 0, &mut blob)?;
    Ok(blob)
}

/// Pairwise all-to-all: rank `r` sends `parts[q]` to `q` and receives one
/// buffer from every rank.
pub fn alltoall_bytes(
    pml: &PmlShared,
    comm: &Comm,
    parts: &[Vec<u8>],
) -> Result<Vec<Vec<u8>>, MpiError> {
    let n = comm.size();
    if parts.len() != n as usize {
        return Err(MpiError::Invalid {
            detail: format!("alltoall needs {n} parts, got {}", parts.len()),
        });
    }
    let me = comm.rank();
    let ctx = comm.ctx_coll();
    // Buffered sends complete immediately, so send-all-then-receive-all is
    // deadlock-free.
    for q in 0..n {
        if q != me {
            pml.send(ctx, comm.world_rank(q)?, coll_tag(OP_ALLTOALL, 0), &parts[q as usize])?;
        }
    }
    let mut out = vec![Vec::new(); n as usize];
    out[me as usize] = parts[me as usize].clone();
    for q in 0..n {
        if q != me {
            let frame = pml.recv(
                ctx,
                Some(comm.world_rank(q)?),
                Some(coll_tag(OP_ALLTOALL, 0)),
            )?;
            out[q as usize] = frame.payload;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::Tracer;
    use netsim::{Fabric, LinkSpec, NodeId, Topology};
    use opal::SafePointGate;
    use std::sync::Arc;

    fn mesh(n: u32) -> Vec<Arc<PmlShared>> {
        let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
        let endpoints: Vec<_> = (0..n).map(|_| fabric.register(NodeId(0))).collect();
        let ids: Vec<_> = endpoints.iter().map(|e| e.id()).collect();
        endpoints
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                PmlShared::new(
                    i as u32,
                    n,
                    ep,
                    ids.clone(),
                    Arc::new(SafePointGate::new()),
                    Tracer::new(),
                )
            })
            .collect()
    }

    /// Run `f(rank, pml, comm)` on one thread per rank and collect results.
    fn run_ranks<R: Send + 'static>(
        n: u32,
        f: impl Fn(u32, Arc<PmlShared>, Comm) -> R + Send + Sync + 'static,
    ) -> Vec<R> {
        let pmls = mesh(n);
        let f = Arc::new(f);
        let handles: Vec<_> = pmls
            .into_iter()
            .enumerate()
            .map(|(i, pml)| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || f(i as u32, pml, Comm::world(n, i as u32)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_for_many_sizes() {
        for n in [1u32, 2, 3, 5, 8] {
            let results = run_ranks(n, |_r, pml, comm| {
                for _ in 0..10 {
                    barrier(&pml, &comm).unwrap();
                }
                true
            });
            assert_eq!(results.len(), n as usize);
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1u32, 2, 3, 6, 7] {
            for root in 0..n {
                let results = run_ranks(n, move |r, pml, comm| {
                    let mut data = if r == root {
                        format!("payload from {root}").into_bytes()
                    } else {
                        Vec::new()
                    };
                    bcast_bytes(&pml, &comm, root, &mut data).unwrap();
                    data
                });
                for data in results {
                    assert_eq!(data, format!("payload from {root}").into_bytes());
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_each_root() {
        for n in [1u32, 2, 4, 5] {
            for root in 0..n {
                let results = run_ranks(n, move |r, pml, comm| {
                    let mine = codec::to_bytes(&u64::from(r + 1)).unwrap();
                    let mut combine = |a: Vec<u8>, b: Vec<u8>| -> Result<Vec<u8>, MpiError> {
                        let x: u64 = codec::from_bytes(&a)?;
                        let y: u64 = codec::from_bytes(&b)?;
                        Ok(codec::to_bytes(&(x + y))?)
                    };
                    reduce_bytes(&pml, &comm, root, mine, &mut combine).unwrap()
                });
                let expected: u64 = (1..=u64::from(n)).sum();
                for (r, out) in results.into_iter().enumerate() {
                    if r as u32 == root {
                        let v: u64 = codec::from_bytes(&out.unwrap()).unwrap();
                        assert_eq!(v, expected);
                    } else {
                        assert!(out.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let n = 5u32;
        let results = run_ranks(n, |r, pml, comm| {
            // Gather everyone's rank-tagged buffer at root 2.
            let mine = vec![r as u8; (r + 1) as usize];
            let gathered = gather_bytes(&pml, &comm, 2, &mine).unwrap();
            if r == 2 {
                let parts = gathered.unwrap();
                for (q, p) in parts.iter().enumerate() {
                    assert_eq!(*p, vec![q as u8; q + 1]);
                }
                // Scatter doubled buffers back.
                let doubled: Vec<Vec<u8>> =
                    parts.iter().map(|p| [p.as_slice(), p.as_slice()].concat()).collect();
                scatter_bytes(&pml, &comm, 2, Some(&doubled)).unwrap()
            } else {
                assert!(gathered.is_none());
                scatter_bytes(&pml, &comm, 2, None).unwrap()
            }
        });
        for (r, got) in results.into_iter().enumerate() {
            assert_eq!(got, vec![r as u8; (r + 1) * 2]);
        }
    }

    #[test]
    fn allgather_and_allreduce() {
        let n = 6u32;
        let results = run_ranks(n, |r, pml, comm| {
            let all = allgather_bytes(&pml, &comm, &[r as u8]).unwrap();
            let mut combine = |a: Vec<u8>, b: Vec<u8>| -> Result<Vec<u8>, MpiError> {
                Ok(vec![a[0].max(b[0])])
            };
            let max = allreduce_bytes(&pml, &comm, vec![r as u8], &mut combine).unwrap();
            (all, max)
        });
        for (all, max) in results {
            assert_eq!(all, (0..6u8).map(|i| vec![i]).collect::<Vec<_>>());
            assert_eq!(max, vec![5u8]);
        }
    }

    #[test]
    fn alltoall_exchanges_pairwise() {
        let n = 4u32;
        let results = run_ranks(n, move |r, pml, comm| {
            let parts: Vec<Vec<u8>> = (0..n).map(|q| vec![r as u8, q as u8]).collect();
            alltoall_bytes(&pml, &comm, &parts).unwrap()
        });
        for (r, got) in results.into_iter().enumerate() {
            for (q, buf) in got.into_iter().enumerate() {
                assert_eq!(buf, vec![q as u8, r as u8]);
            }
        }
    }

    #[test]
    fn collectives_on_subcommunicator() {
        // Odd ranks form a sub-communicator; even ranks stay out entirely.
        let n = 6u32;
        let results = run_ranks(n, |r, pml, _world| {
            if r % 2 == 1 {
                let sub = Comm::from_parts(10, vec![1, 3, 5], r);
                let mut data = if r == 1 { vec![99u8] } else { Vec::new() };
                bcast_bytes(&pml, &sub, 0, &mut data).unwrap();
                Some(data)
            } else {
                None
            }
        });
        for (r, out) in results.into_iter().enumerate() {
            if r % 2 == 1 {
                assert_eq!(out.unwrap(), vec![99u8]);
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn invalid_roots_and_counts_rejected() {
        let results = run_ranks(2, |r, pml, comm| {
            let bad_root = bcast_bytes(&pml, &comm, 9, &mut vec![]).is_err();
            let bad_parts = if r == 0 {
                scatter_bytes(&pml, &comm, 0, Some(&[vec![0u8]])).is_err()
            } else {
                true
            };
            let bad_alltoall = alltoall_bytes(&pml, &comm, &[vec![]]).is_err();
            bad_root && bad_parts && bad_alltoall
        });
        assert!(results.into_iter().all(|ok| ok));
    }
}
