//! The resumable application model.
//!
//! Applications run as a sequence of **steps** over an explicit,
//! serializable state. The runner serializes the state at every step
//! boundary (the *boundary image*); a checkpoint captures that image plus
//! the PML's op log of the step in progress. On restart the state is the
//! boundary image and the step re-executes with the log armed: already
//! performed operations replay their recorded results, so the partial
//! step's state mutations are re-applied exactly once (see
//! [`crate::pml`]).
//!
//! The contract this imposes on applications is the standard
//! application-level checkpointing discipline:
//!
//! * a step must be **deterministic** given its state and the results of
//!   its MPI operations (derive randomness from an RNG seeded *in* the
//!   state; no wall-clock reads into state);
//! * all inter-process communication goes through the [`Mpi`] handle;
//! * long compute-only phases should call [`Mpi::progress`] so a
//!   checkpoint request is not delayed to the next step boundary.

use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::sync::Arc;

use cr_core::CrError;

use crate::error::MpiError;
use crate::mpi::Mpi;

/// What a step tells the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Run another step.
    Continue,
    /// The application is finished.
    Done,
}

/// A checkpointable MPI application.
pub trait MpiApp: Send + Sync + 'static {
    /// The application's explicit, serializable state.
    type State: Serialize + DeserializeOwned + Send + 'static;

    /// Human-readable application name (snapshot metadata, logs).
    fn name(&self) -> &str {
        "mpi-app"
    }

    /// Build the initial state. Runs once per fresh launch (never on
    /// restart). May communicate.
    fn init_state(&self, mpi: &Mpi) -> Result<Self::State, MpiError>;

    /// Execute one step. Steps are the checkpoint granularity: state is
    /// serialized at every boundary, so a step should be a meaningful unit
    /// of work (one iteration, one batch), not a single arithmetic
    /// operation.
    fn step(&self, mpi: &Mpi, state: &mut Self::State) -> Result<StepOutcome, MpiError>;
}

/// The shared cell holding the current boundary image; the container's
/// "app" capture section reads it from the notification thread.
#[derive(Clone, Default)]
pub struct BoundaryCell {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl BoundaryCell {
    /// Empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the boundary image.
    pub fn set(&self, bytes: Vec<u8>) {
        *self.bytes.lock() = bytes;
    }

    /// Current boundary image (the capture closure).
    pub fn get(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }
}

/// Why the run loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The application returned [`StepOutcome::Done`].
    Completed,
    /// The job was asked to terminate (checkpoint-and-terminate).
    Terminated,
}

/// Drive an application to completion (or cooperative termination).
///
/// `restored` carries the "app" section bytes when this process was
/// reconstructed from a snapshot.
pub fn run_app<A: MpiApp>(
    app: &A,
    mpi: &Mpi,
    boundary: &BoundaryCell,
    restored: Option<Vec<u8>>,
) -> Result<(A::State, RunEnd), MpiError> {
    let mut resuming = restored.is_some();
    let mut state: A::State = match restored {
        Some(bytes) => {
            boundary.set(bytes.clone());
            codec::from_bytes(&bytes).map_err(|e| {
                MpiError::Cr(CrError::BadSnapshot {
                    detail: format!("app section does not decode: {e}"),
                })
            })?
        }
        None => {
            let state = app.init_state(mpi)?;
            boundary.set(codec::to_bytes(&state)?);
            state
        }
    };

    // The checkpoint window opens only once a boundary image exists:
    // before this point a checkpoint could not describe the process.
    mpi.container().enable_checkpointing();
    if resuming {
        // Replay the partial step captured in the snapshot.
        mpi.pml().arm_replay();
    }

    loop {
        if !resuming {
            // Step boundary: ops of the finished step are accounted for by
            // the fresh boundary image; drop the log.
            mpi.pml().begin_step();
            boundary.set(codec::to_bytes(&state)?);
        }
        resuming = false;

        // The boundary is itself a safe point.
        mpi.container().gate().checkpoint_point();
        if mpi.should_terminate() {
            return Ok((state, RunEnd::Terminated));
        }

        match app.step(mpi, &mut state) {
            Ok(StepOutcome::Continue) => {}
            Ok(StepOutcome::Done) => {
                mpi.pml().begin_step();
                return Ok((state, RunEnd::Completed));
            }
            // A blocked operation unwound because the job is terminating
            // (checkpoint-and-terminate): not an application failure. The
            // partially-executed step's effects are irrelevant — the job's
            // durable outcome is the snapshot already on stable storage.
            Err(MpiError::Terminating) => return Ok((state, RunEnd::Terminated)),
            Err(e) => return Err(e),
        }
    }
}
