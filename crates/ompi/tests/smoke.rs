//! End-to-end smoke tests: launch, communicate, checkpoint, restart.

use std::path::PathBuf;
use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use netsim::{LinkSpec, Topology};
use ompi::app::{MpiApp, RunEnd, StepOutcome};
use ompi::{mpirun, restart, Mpi, MpiError, RestartOptions, RunConfig};
use orte::Runtime;
use serde::{Deserialize, Serialize};

fn runtime(tag: &str, nodes: u32) -> Runtime {
    let dir = std::env::temp_dir().join(format!(
        "ompi_smoke_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Runtime::new(Topology::uniform(nodes, LinkSpec::gigabit_ethernet()), dir).unwrap()
}

/// Token ring: each step passes an accumulating token around the ring.
struct RingApp {
    rounds: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RingState {
    round: u64,
    token_sum: u64,
}

impl MpiApp for RingApp {
    type State = RingState;

    fn name(&self) -> &str {
        "ring"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<RingState, MpiError> {
        Ok(RingState {
            round: 0,
            token_sum: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut RingState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        if me == 0 {
            mpi.send(&comm, next, 7, &(state.round * 1000))?;
            let (token, _): (u64, _) = mpi.recv(&comm, Some(prev), Some(7))?;
            state.token_sum += token;
        } else {
            let (token, _): (u64, _) = mpi.recv(&comm, Some(prev), Some(7))?;
            let forwarded = token + u64::from(me);
            mpi.send(&comm, next, 7, &forwarded)?;
            state.token_sum += forwarded;
        }
        state.round += 1;
        Ok(if state.round >= self.rounds {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

fn expected_ring_sums(nprocs: u64, rounds: u64) -> Vec<u64> {
    // Rank 0 receives round*1000 + sum(1..n); rank r accumulates
    // round*1000 + sum(1..=r) per round.
    (0..nprocs)
        .map(|r| {
            (0..rounds)
                .map(|round| {
                    let base = round * 1000;
                    if r == 0 {
                        base + (1..nprocs).sum::<u64>()
                    } else {
                        base + (1..=r).sum::<u64>()
                    }
                })
                .sum()
        })
        .collect()
}

#[test]
fn ring_runs_to_completion() {
    let rt = runtime("ring", 2);
    let job = mpirun(&rt, Arc::new(RingApp { rounds: 10 }), RunConfig::new(4)).unwrap();
    let results = job.wait().unwrap();
    assert_eq!(results.len(), 4);
    let expected = expected_ring_sums(4, 10);
    for (r, (state, end)) in results.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed);
        assert_eq!(state.round, 10);
        assert_eq!(state.token_sum, expected[r], "rank {r}");
    }
    rt.shutdown();
}

#[test]
fn checkpoint_then_restart_reproduces_the_answer() {
    let rt = runtime("cr", 2);
    let app = Arc::new(RingApp { rounds: 2000 });
    let job = mpirun(&rt, Arc::clone(&app), RunConfig::new(4)).unwrap();

    // Let it get going, checkpoint mid-flight, then kill the job.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let outcome = job
        .checkpoint(&CheckpointOptions::tool().and_terminate())
        .unwrap();
    let terminated = job.wait().unwrap();
    assert!(terminated
        .iter()
        .any(|(_, end)| *end == RunEnd::Terminated || *end == RunEnd::Completed));

    // Fault-free reference run.
    let rt2 = runtime("cr_ref", 2);
    let reference = mpirun(&rt2, Arc::clone(&app), RunConfig::new(4))
        .unwrap()
        .wait()
        .unwrap();
    rt2.shutdown();

    // Restart from the snapshot in a fresh runtime and compare.
    let rt3 = runtime("cr_restart", 3);
    let job = restart(&rt3, Arc::clone(&app), &outcome.global_snapshot, RestartOptions::default()).unwrap();
    let restarted = job.wait().unwrap();
    assert_eq!(restarted.len(), 4);
    for (r, (state, end)) in restarted.iter().enumerate() {
        assert_eq!(*end, RunEnd::Completed, "rank {r}");
        assert_eq!(state.round, reference[r].0.round, "rank {r} rounds");
        assert_eq!(state.token_sum, reference[r].0.token_sum, "rank {r} sum");
    }
    rt.shutdown();
    rt3.shutdown();
}

#[test]
fn collectives_work() {
    struct CollApp;

    #[derive(Serialize, Deserialize)]
    struct CollState {
        phase: u32,
        sum: u64,
        gathered: Vec<u32>,
    }

    impl MpiApp for CollApp {
        type State = CollState;

        fn init_state(&self, _mpi: &Mpi) -> Result<CollState, MpiError> {
            Ok(CollState {
                phase: 0,
                sum: 0,
                gathered: Vec::new(),
            })
        }

        fn step(&self, mpi: &Mpi, state: &mut CollState) -> Result<StepOutcome, MpiError> {
            let comm = mpi.world().clone();
            let me = comm.rank();
            mpi.barrier(&comm)?;
            state.sum = mpi.allreduce(&comm, u64::from(me) + 1, |a, b| a + b)?;
            state.gathered = mpi.allgather(&comm, &me)?;
            let brd = mpi.bcast(&comm, 1, if me == 1 { 42u32 } else { 0 })?;
            assert_eq!(brd, 42);
            let reduced = mpi.reduce(&comm, 0, u64::from(me), |a, b| a.max(b))?;
            if me == 0 {
                assert_eq!(reduced, Some(u64::from(comm.size() - 1)));
            } else {
                assert_eq!(reduced, None);
            }
            let part: u32 = mpi.scatter(
                &comm,
                0,
                if me == 0 {
                    Some((0..comm.size()).map(|i| i * 10).collect())
                } else {
                    None
                },
            )?;
            assert_eq!(part, me * 10);
            let exchanged =
                mpi.alltoall(&comm, (0..comm.size()).map(|q| me * 100 + q).collect())?;
            for (q, v) in exchanged.iter().enumerate() {
                assert_eq!(*v, (q as u32) * 100 + me);
            }
            state.phase += 1;
            Ok(if state.phase >= 3 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            })
        }
    }

    let rt = runtime("coll", 3);
    let results = mpirun(&rt, Arc::new(CollApp), RunConfig::new(5))
        .unwrap()
        .wait()
        .unwrap();
    for (state, _) in &results {
        assert_eq!(state.sum, (1..=5).sum::<u64>());
        assert_eq!(state.gathered, vec![0, 1, 2, 3, 4]);
    }
    rt.shutdown();
}

#[test]
fn params_select_components() {
    let rt = runtime("params", 1);
    let params = Arc::new(McaParams::new());
    params.set("crs", "self");
    params.set("crcp", "logger");
    params.set("snapc", "direct");
    let config = RunConfig {
        nprocs: 2,
        params,
    };
    let job = mpirun(&rt, Arc::new(RingApp { rounds: 3000 }), config).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(30));
    let outcome = job.checkpoint(&CheckpointOptions::tool()).unwrap();
    assert!(outcome.global_snapshot.exists());
    job.request_terminate();
    let _ = job.wait().unwrap();

    // The local snapshots record the self CRS.
    let global = cr_core::GlobalSnapshot::open(&outcome.global_snapshot).unwrap();
    for local in global.local_snapshots(outcome.interval).unwrap() {
        assert_eq!(local.crs_component(), "self");
    }
    rt.shutdown();
}

fn _type_assertions(p: PathBuf) -> PathBuf {
    p
}
