//! PML-level tests: matching, ordering, requests, replay, capture/restore.

use std::sync::Arc;
use std::time::Duration;

use cr_core::Tracer;
use netsim::{Fabric, LinkSpec, NodeId, Topology};
use ompi::crcp::{CoordCrcp, CrcpComponent, LoggerCrcp, NoneCrcp};
use ompi::pml::PmlShared;
use opal::SafePointGate;

/// Build `n` PMLs on one fabric (all on node 0), fully meshed.
fn mesh(n: u32) -> Vec<Arc<PmlShared>> {
    let fabric = Fabric::new(Topology::uniform(1, LinkSpec::gigabit_ethernet()));
    let endpoints: Vec<_> = (0..n).map(|_| fabric.register(NodeId(0))).collect();
    let ids: Vec<_> = endpoints.iter().map(|e| e.id()).collect();
    endpoints
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            PmlShared::new(
                i as u32,
                n,
                ep,
                ids.clone(),
                Arc::new(SafePointGate::new()),
                Tracer::new(),
            )
        })
        .collect()
}

#[test]
fn send_recv_basic() {
    let pmls = mesh(2);
    pmls[0].send(0, 1, 5, b"hello").unwrap();
    let frame = pmls[1].recv(0, Some(0), Some(5)).unwrap();
    assert_eq!(frame.payload, b"hello");
    assert_eq!(frame.src, 0);
    assert_eq!(frame.tag, 5);
    assert_eq!(pmls[0].sent_count(1), 1);
    assert_eq!(pmls[1].recv_count(0), 1);
}

#[test]
fn tag_and_source_filtering() {
    let pmls = mesh(3);
    pmls[0].send(0, 2, 1, b"from0tag1").unwrap();
    pmls[1].send(0, 2, 2, b"from1tag2").unwrap();
    pmls[0].send(0, 2, 2, b"from0tag2").unwrap();
    // Tag-filtered any-source: first arrival with tag 2 wins; both
    // tag-2 messages are retrievable.
    let a = pmls[2].recv(0, None, Some(2)).unwrap();
    let b = pmls[2].recv(0, None, Some(2)).unwrap();
    let mut got = vec![a.payload, b.payload];
    got.sort();
    assert_eq!(got, vec![b"from0tag2".to_vec(), b"from1tag2".to_vec()]);
    // Source-filtered any-tag.
    let c = pmls[2].recv(0, Some(0), None).unwrap();
    assert_eq!(c.payload, b"from0tag1");
}

#[test]
fn context_isolation() {
    let pmls = mesh(2);
    pmls[0].send(7, 1, 1, b"ctx7").unwrap();
    pmls[0].send(9, 1, 1, b"ctx9").unwrap();
    let frame = pmls[1].recv(9, Some(0), Some(1)).unwrap();
    assert_eq!(frame.payload, b"ctx9");
    let frame = pmls[1].recv(7, Some(0), Some(1)).unwrap();
    assert_eq!(frame.payload, b"ctx7");
}

#[test]
fn per_pair_fifo_order() {
    let pmls = mesh(2);
    for i in 0..100u32 {
        pmls[0].send(0, 1, 9, &i.to_le_bytes()).unwrap();
    }
    for i in 0..100u32 {
        let frame = pmls[1].recv(0, Some(0), Some(9)).unwrap();
        assert_eq!(frame.payload, i.to_le_bytes());
    }
}

#[test]
fn self_send() {
    let pmls = mesh(1);
    pmls[0].send(0, 0, 3, b"to myself").unwrap();
    let frame = pmls[0].recv(0, Some(0), Some(3)).unwrap();
    assert_eq!(frame.payload, b"to myself");
}

#[test]
fn blocking_recv_across_threads() {
    let pmls = mesh(2);
    let receiver = Arc::clone(&pmls[1]);
    let t = std::thread::spawn(move || receiver.recv(0, Some(0), Some(1)).unwrap());
    std::thread::sleep(Duration::from_millis(20));
    pmls[0].send(0, 1, 1, b"late").unwrap();
    assert_eq!(t.join().unwrap().payload, b"late");
}

#[test]
fn nonblocking_requests() {
    let pmls = mesh(2);
    // irecv posted before the message exists.
    let r = pmls[1].irecv(0, Some(0), Some(4)).unwrap();
    assert!(pmls[1].test(r).unwrap().is_none());
    let s = pmls[0].isend(0, 1, 4, b"async").unwrap();
    assert_eq!(pmls[0].wait(s).unwrap(), None); // send request
    let frame = pmls[1].wait(r).unwrap().expect("recv request has payload");
    assert_eq!(frame.payload, b"async");
    // Waiting on an unknown request errors.
    assert!(pmls[1].wait(9999).is_err());
}

#[test]
fn posted_receives_match_before_unexpected_queue() {
    let pmls = mesh(2);
    let r = pmls[1].irecv(0, None, Some(1)).unwrap();
    pmls[0].send(0, 1, 1, b"first").unwrap();
    pmls[0].send(0, 1, 1, b"second").unwrap();
    // The posted request takes the first message; a blocking recv gets the
    // second.
    let blocking = pmls[1].recv(0, Some(0), Some(1)).unwrap();
    let posted = pmls[1].wait(r).unwrap().unwrap();
    assert_eq!(posted.payload, b"first");
    assert_eq!(blocking.payload, b"second");
}

#[test]
fn capture_restore_preserves_unmatched_and_counts() {
    let pmls = mesh(2);
    pmls[0].send(0, 1, 1, b"one").unwrap();
    pmls[0].send(0, 1, 2, b"two").unwrap();
    // Receive only the tag-2 message; tag-1 stays unmatched after a pump.
    let f = pmls[1].recv(0, Some(0), Some(2)).unwrap();
    assert_eq!(f.payload, b"two");

    let section = pmls[1].capture().unwrap();

    // "Restart": fresh mesh, restore rank 1's state.
    let pmls2 = mesh(2);
    pmls2[1].restore(&section).unwrap();
    assert_eq!(pmls2[1].recv_count(0), 2);
    // The unmatched tag-1 message survives into the new incarnation.
    let f = pmls2[1].recv(0, Some(0), Some(1)).unwrap();
    assert_eq!(f.payload, b"one");
}

#[test]
fn restore_rejects_wrong_world_size() {
    let pmls = mesh(2);
    let section = pmls[0].capture().unwrap();
    let other = mesh(3);
    assert!(other[0].restore(&section).is_err());
}

#[test]
fn step_replay_skips_sends_and_replays_recvs() {
    // Rank 0 executes a partial step (send + recv + send), then we capture
    // both sides and re-execute the step against restored state: the
    // replayed operations must return identical results without moving any
    // new bytes.
    let pmls = mesh(2);
    pmls[0].begin_step();
    pmls[1].begin_step();
    pmls[0].send(0, 1, 1, b"ping").unwrap();
    let echo_req = pmls[0].irecv(0, Some(1), Some(2)).unwrap();
    let ping = pmls[1].recv(0, Some(0), Some(1)).unwrap();
    pmls[1].send(0, 0, 2, &ping.payload).unwrap();
    let echo = pmls[0].wait(echo_req).unwrap().unwrap();
    assert_eq!(echo.payload, b"ping");

    // Checkpoint both mid-step.
    let s0 = pmls[0].capture().unwrap();
    let s1 = pmls[1].capture().unwrap();

    // Restart.
    let pmls2 = mesh(2);
    pmls2[0].restore(&s0).unwrap();
    pmls2[1].restore(&s1).unwrap();
    pmls2[0].arm_replay();
    pmls2[1].arm_replay();
    assert!(pmls2[0].is_replaying());

    // Re-execute rank 0's step: all three ops replay.
    pmls2[0].send(0, 1, 1, b"ping").unwrap();
    let echo_req = pmls2[0].irecv(0, Some(1), Some(2)).unwrap();
    let echo = pmls2[0].wait(echo_req).unwrap().unwrap();
    assert_eq!(echo.payload, b"ping");
    assert!(!pmls2[0].is_replaying());
    // Re-execute rank 1's step.
    let ping = pmls2[1].recv(0, Some(0), Some(1)).unwrap();
    assert_eq!(ping.payload, b"ping");
    pmls2[1].send(0, 0, 2, &ping.payload).unwrap();
    // No duplicate traffic: counters unchanged from the captured values.
    assert_eq!(pmls2[0].sent_count(1), 1);
    assert_eq!(pmls2[1].sent_count(0), 1);
}

#[test]
fn replay_divergence_detected() {
    let pmls = mesh(2);
    pmls[0].begin_step();
    pmls[0].send(0, 1, 1, b"original").unwrap();
    let section = pmls[0].capture().unwrap();

    let pmls2 = mesh(2);
    pmls2[0].restore(&section).unwrap();
    pmls2[0].arm_replay();
    // Different tag: the app is non-deterministic — must be caught.
    let err = pmls2[0].send(0, 1, 99, b"original").unwrap_err();
    assert!(err.to_string().contains("deterministic"));
}

#[test]
fn coord_bookmark_exchange_drains_in_flight() {
    let pmls = mesh(3);
    let coord = CoordCrcp::new(Tracer::new());
    // In-flight traffic: nothing received yet.
    pmls[0].send(0, 1, 1, b"a").unwrap();
    pmls[0].send(0, 1, 1, b"b").unwrap();
    pmls[2].send(0, 1, 1, b"c").unwrap();
    pmls[1].send(0, 2, 1, b"d").unwrap();

    // All ranks coordinate concurrently (as the notification threads do).
    let handles: Vec<_> = pmls
        .iter()
        .map(|pml| {
            let pml = Arc::clone(pml);
            std::thread::spawn(move || CoordCrcp::new(Tracer::new()).coordinate(&pml))
        })
        .collect();
    for h in handles {
        h.join().unwrap().unwrap();
    }
    let _ = coord;

    // Channels quiesced: every sent message is in its receiver's PML.
    assert_eq!(pmls[1].recv_count(0), 2);
    assert_eq!(pmls[1].recv_count(2), 1);
    assert_eq!(pmls[2].recv_count(1), 1);
    // And the drained messages are consumable.
    assert_eq!(pmls[1].recv(0, Some(0), Some(1)).unwrap().payload, b"a");
    assert_eq!(pmls[1].recv(0, Some(0), Some(1)).unwrap().payload, b"b");
    assert_eq!(pmls[1].recv(0, Some(2), Some(1)).unwrap().payload, b"c");
    assert_eq!(pmls[2].recv(0, Some(1), Some(1)).unwrap().payload, b"d");
}

#[test]
fn logger_records_prunes_and_resends() {
    let pmls = mesh(2);
    let logger: Arc<dyn CrcpComponent> = Arc::new(LoggerCrcp::new(Tracer::new()));
    pmls[0].set_crcp(Some(Arc::clone(&logger)));
    pmls[1].set_crcp(Some(Arc::clone(&logger)));

    pmls[0].send(0, 1, 1, b"m0").unwrap();
    pmls[0].send(0, 1, 1, b"m1").unwrap();
    pmls[0].send(0, 1, 1, b"m2").unwrap();
    // Receiver consumes only the first; m1/m2 stay in flight or unmatched.
    assert_eq!(pmls[1].recv(0, Some(0), Some(1)).unwrap().payload, b"m0");
    assert_eq!(pmls[0].with_state(|st| st.sender_log.len()), 3);

    // Checkpoint-time GC: both coordinate; receiver has counted m1/m2 into
    // its PML by then (they were already delivered by the fabric), so the
    // whole log can be pruned... but only what the receiver acknowledges.
    let a = Arc::clone(&pmls[0]);
    let b = Arc::clone(&pmls[1]);
    let ta = std::thread::spawn(move || a.crcp().unwrap().coordinate(&a));
    let tb = std::thread::spawn(move || b.crcp().unwrap().coordinate(&b));
    ta.join().unwrap().unwrap();
    tb.join().unwrap().unwrap();
    let remaining = pmls[0].with_state(|st| st.sender_log.len());
    assert!(remaining <= 3);

    // Simulate restart where the receiver never got m1/m2: fresh mesh,
    // sender keeps its log, receiver restored with recv_count == 1.
    let pmls2 = mesh(2);
    pmls2[0].set_crcp(Some(Arc::clone(&logger)));
    pmls2[1].set_crcp(Some(Arc::clone(&logger)));
    pmls2[0].with_state(|st| {
        st.sent_counts[1] = 3;
        st.sender_log = vec![
            ompi::pml::LoggedSend { dst: 1, ctx: 0, tag: 1, seq: 0, payload: b"m0".to_vec() },
            ompi::pml::LoggedSend { dst: 1, ctx: 0, tag: 1, seq: 1, payload: b"m1".to_vec() },
            ompi::pml::LoggedSend { dst: 1, ctx: 0, tag: 1, seq: 2, payload: b"m2".to_vec() },
        ];
    });
    pmls2[1].with_state(|st| st.recv_counts[0] = 1);

    let a = Arc::clone(&pmls2[0]);
    let b = Arc::clone(&pmls2[1]);
    let ta = std::thread::spawn(move || {
        a.crcp().unwrap().resume(&a, cr_core::FtEventState::Restart)
    });
    let tb = std::thread::spawn(move || {
        b.crcp().unwrap().resume(&b, cr_core::FtEventState::Restart)
    });
    ta.join().unwrap().unwrap();
    tb.join().unwrap().unwrap();

    // m1 and m2 arrive exactly once (m0's resend is deduplicated by seq).
    assert_eq!(pmls2[1].recv(0, Some(0), Some(1)).unwrap().payload, b"m1");
    assert_eq!(pmls2[1].recv(0, Some(0), Some(1)).unwrap().payload, b"m2");
    assert_eq!(pmls2[1].recv_count(0), 3);
}

#[test]
fn none_component_is_pure_passthrough() {
    let pmls = mesh(2);
    pmls[0].set_crcp(Some(Arc::new(NoneCrcp)));
    pmls[1].set_crcp(Some(Arc::new(NoneCrcp)));
    pmls[0].send(0, 1, 1, b"x").unwrap();
    assert_eq!(pmls[1].recv(0, Some(0), Some(1)).unwrap().payload, b"x");
    // No logging tax.
    assert_eq!(pmls[0].with_state(|st| st.sender_log.len()), 0);
    pmls[0].crcp().unwrap().coordinate(&pmls[0]).unwrap();
}

#[test]
fn invalid_rank_rejected() {
    let pmls = mesh(2);
    assert!(pmls[0].send(0, 5, 1, b"x").is_err());
    assert!(pmls[0].recv(0, Some(5), None).is_err());
}
