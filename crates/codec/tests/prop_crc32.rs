//! Property tests: the CRC-32 slicing-by-8 fast path agrees with a
//! bit-at-a-time reference for arbitrary lengths, unaligned offsets, and
//! arbitrary streaming split points.
//!
//! The unit tests in `crc32.rs` cover known vectors and random whole
//! buffers; these properties additionally drive *subslices* (so the fast
//! path sees every word-alignment class relative to the allocation) and
//! multi-way streaming splits (mixing `update` and `update_bytewise`
//! entry points mid-stream), against an independent reference that
//! shares no tables with the implementation.

use codec::crc32::{crc32, Crc32};
use proptest::collection::vec;
use proptest::prelude::*;

/// Independent bit-at-a-time CRC-32/IEEE reference: no lookup tables, so
/// it cannot share a table-generation bug with the implementation.
fn crc32_bitwise(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    crc ^ 0xFFFF_FFFF
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sliced_matches_bitwise_reference(data in vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(crc32(&data), crc32_bitwise(&data));
    }

    #[test]
    fn unaligned_offsets_agree(
        data in vec(any::<u8>(), 0..1024),
        start in any::<prop::sample::Index>(),
        end in any::<prop::sample::Index>(),
    ) {
        // Subslices at arbitrary offsets: the fast path's 8-byte folds
        // land on every alignment class relative to the allocation.
        let (mut s, mut e) = (start.index(data.len() + 1), end.index(data.len() + 1));
        if s > e {
            std::mem::swap(&mut s, &mut e);
        }
        let slice = &data[s..e];
        prop_assert_eq!(crc32(slice), crc32_bitwise(slice));
    }

    #[test]
    fn streaming_split_points_agree(
        data in vec(any::<u8>(), 0..1024),
        cuts in vec(any::<prop::sample::Index>(), 0..8),
        bytewise_mask in any::<u8>(),
    ) {
        // Feed the same input in arbitrary pieces, each piece through
        // either entry point (fast or bytewise), and require the running
        // state to agree with the one-shot reference at the end.
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        let mut h = Crc32::new();
        for (i, pair) in offsets.windows(2).enumerate() {
            let piece = &data[pair[0]..pair[1]];
            if bytewise_mask >> (i % 8) & 1 == 1 {
                h.update_bytewise(piece);
            } else {
                h.update(piece);
            }
        }
        prop_assert_eq!(h.finalize(), crc32_bitwise(&data));
    }
}
