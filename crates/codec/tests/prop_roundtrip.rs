//! Property tests: the binary codec and the metadata format are round-trip
//! exact for arbitrary inputs (DESIGN.md invariant 4).

use proptest::collection::{btree_map, vec};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeValue {
    Null,
    Bool(bool),
    Int(i64),
    Uint(u64),
    Float(u32), // bit pattern, to keep Eq semantics simple
    Text(String),
    Blob(Vec<u8>),
    List(Vec<TreeValue>),
    Table(BTreeMap<String, TreeValue>),
    Labeled { label: String, inner: Box<TreeValue> },
}

fn arb_tree() -> impl Strategy<Value = TreeValue> {
    let leaf = prop_oneof![
        Just(TreeValue::Null),
        any::<bool>().prop_map(TreeValue::Bool),
        any::<i64>().prop_map(TreeValue::Int),
        any::<u64>().prop_map(TreeValue::Uint),
        any::<u32>().prop_map(TreeValue::Float),
        ".*".prop_map(TreeValue::Text),
        vec(any::<u8>(), 0..64).prop_map(TreeValue::Blob),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..8).prop_map(TreeValue::List),
            btree_map("[a-z]{1,8}", inner.clone(), 0..6).prop_map(TreeValue::Table),
            ("[a-z]{0,12}", inner).prop_map(|(label, v)| TreeValue::Labeled {
                label,
                inner: Box::new(v)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_roundtrip_tree(value in arb_tree()) {
        let bytes = codec::to_bytes(&value).unwrap();
        let back: TreeValue = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn binary_roundtrip_scalars(i in any::<i64>(), u in any::<u64>(), s in ".*", b in vec(any::<u8>(), 0..512)) {
        let v = (i, u, s.clone(), b.clone());
        let bytes = codec::to_bytes(&v).unwrap();
        let back: (i64, u64, String, Vec<u8>) = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn binary_never_panics_on_garbage(data in vec(any::<u8>(), 0..256)) {
        // Corrupt input must produce Err, never panic or huge allocation.
        let _ = codec::from_bytes::<TreeValue>(&data);
        let _ = codec::from_bytes::<Vec<String>>(&data);
        let _ = codec::from_bytes::<u64>(&data);
    }

    #[test]
    fn frame_roundtrip(payload in vec(any::<u8>(), 0..2048)) {
        let framed = codec::write_frame(&payload);
        prop_assert_eq!(codec::read_frame(&framed).unwrap(), payload.as_slice());
    }

    #[test]
    fn frame_detects_any_single_byte_corruption(payload in vec(any::<u8>(), 1..256), idx in any::<prop::sample::Index>(), flip in 1..=255u8) {
        let mut framed = codec::write_frame(&payload);
        let i = idx.index(framed.len());
        framed[i] ^= flip;
        prop_assert!(codec::read_frame(&framed).is_err());
    }

    #[test]
    fn meta_roundtrip(entries in vec(("[a-zA-Z0-9_.-]{1,12}", "[a-zA-Z0-9_.-]{1,16}", "\\PC*"), 0..24)) {
        let mut doc = codec::MetaDoc::new();
        for (section, key, value) in &entries {
            doc.append(section, key, value.clone());
        }
        let text = doc.render();
        let back = codec::MetaDoc::parse(&text).unwrap();
        for (section, key, value) in &entries {
            prop_assert!(back.get_all(section, key).contains(&value.trim()) || back.get_all(section, key).iter().any(|v| v == value));
        }
    }

    #[test]
    fn meta_parse_never_panics(text in "\\PC*") {
        let _ = codec::MetaDoc::parse(&text);
    }

    #[test]
    fn varint_roundtrip(v in any::<u64>(), s in any::<i64>()) {
        let mut buf = Vec::new();
        codec::varint::write_u64(&mut buf, v);
        codec::varint::write_i64(&mut buf, s);
        let mut pos = 0;
        prop_assert_eq!(codec::varint::read_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(codec::varint::read_i64(&buf, &mut pos).unwrap(), s);
        prop_assert_eq!(pos, buf.len());
    }
}
