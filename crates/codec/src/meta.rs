//! Line-oriented metadata format for `snapshot_meta.data` files.
//!
//! Snapshot references (both local and global) carry a small, human
//! readable metadata file that records which checkpointer produced the
//! snapshot, the checkpoint interval, process identities, and the runtime
//! parameters the job was originally launched with. Administrators are
//! expected to be able to `cat` these files, so the format is plain text:
//!
//! ```text
//! # ompi-cr snapshot metadata
//! [snapshot]
//! crs = blcr_sim
//! interval = 3
//!
//! [process]
//! rank = 0
//! hostname = node00
//! ```
//!
//! Rules:
//! * `#` starts a comment line; blank lines are ignored.
//! * `[name]` opens a section; keys before any section go into the unnamed
//!   section `""`.
//! * `key = value` entries; repeated keys are allowed and preserved in
//!   order (used for per-rank lists in global metadata).
//! * Values are stored verbatim except for escaped `\n`, `\\`, and `\r`
//!   so multi-line values (e.g. original command lines) survive.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};

/// An ordered metadata document: a list of sections, each with ordered
/// `(key, value)` entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetaDoc {
    sections: Vec<Section>,
}

/// One `[name]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    name: String,
    entries: Vec<(String, String)>,
}

impl Section {
    /// Section name (empty string for the leading unnamed section).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered entries.
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }
}

fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(value: &str, line: usize) -> Result<String> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(Error::Meta {
                    line,
                    msg: format!("unknown escape sequence \\{other}"),
                })
            }
            None => {
                return Err(Error::Meta {
                    line,
                    msg: "dangling backslash at end of value".into(),
                })
            }
        }
    }
    Ok(out)
}

impl MetaDoc {
    /// Create an empty document.
    pub fn new() -> Self {
        MetaDoc::default()
    }

    /// Append `key = value` to `section`, creating the section if needed.
    ///
    /// Repeated keys accumulate (they are how per-rank lists are stored).
    ///
    /// # Panics
    /// Panics if `key` contains characters outside `[A-Za-z0-9_.-]` — keys
    /// are chosen by this codebase, so a bad key is a programming error.
    pub fn append(&mut self, section: &str, key: &str, value: impl Into<String>) {
        assert!(valid_key(key), "invalid metadata key: {key:?}");
        let sec = match self.sections.iter_mut().find(|s| s.name == section) {
            Some(s) => s,
            None => {
                self.sections.push(Section {
                    name: section.to_string(),
                    entries: Vec::new(),
                });
                self.sections.last_mut().expect("just pushed")
            }
        };
        sec.entries.push((key.to_string(), value.into()));
    }

    /// Replace all occurrences of `key` in `section` with a single value.
    pub fn set(&mut self, section: &str, key: &str, value: impl Into<String>) {
        if let Some(sec) = self.sections.iter_mut().find(|s| s.name == section) {
            sec.entries.retain(|(k, _)| k != key);
        }
        self.append(section, key, value);
    }

    /// Remove every `key = value` entry in `section` whose value equals
    /// `value`. Returns how many entries were removed.
    pub fn remove_value(&mut self, section: &str, key: &str, value: &str) -> usize {
        let mut removed = 0;
        for sec in self.sections.iter_mut().filter(|s| s.name == section) {
            let before = sec.entries.len();
            sec.entries.retain(|(k, v)| !(k == key && v == value));
            removed += before - sec.entries.len();
        }
        removed
    }

    /// Remove an entire section (header and all entries). Returns `true`
    /// if a section with that name existed.
    pub fn remove_section(&mut self, section: &str) -> bool {
        let before = self.sections.len();
        self.sections.retain(|s| s.name != section);
        self.sections.len() != before
    }

    /// First value of `key` in `section`, if present.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|s| s.name == section)?
            .entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All values of `key` in `section`, in insertion order.
    pub fn get_all(&self, section: &str, key: &str) -> Vec<&str> {
        self.sections
            .iter()
            .filter(|s| s.name == section)
            .flat_map(|s| s.entries.iter())
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Parse `key`'s first value in `section` as the given type.
    pub fn get_parsed<T: std::str::FromStr>(&self, section: &str, key: &str) -> Option<T> {
        self.get(section, key)?.parse().ok()
    }

    /// Required string accessor with a contextual error.
    pub fn require(&self, section: &str, key: &str) -> Result<&str> {
        self.get(section, key).ok_or_else(|| Error::Meta {
            line: 0,
            msg: format!("missing required key [{section}] {key}"),
        })
    }

    /// All sections in order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Collect a section's entries into a map (last value wins for dups).
    pub fn section_map(&self, section: &str) -> BTreeMap<String, String> {
        self.sections
            .iter()
            .filter(|s| s.name == section)
            .flat_map(|s| s.entries.iter().cloned())
            .collect()
    }

    /// Parse a metadata document from text.
    pub fn parse(text: &str) -> Result<Self> {
        let mut doc = MetaDoc::new();
        let mut current = String::new();
        let mut seen_any_in_current = false;
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| Error::Meta {
                    line: lineno,
                    msg: "section header missing closing ']'".into(),
                })?;
                current = name.trim().to_string();
                // Materialize empty sections so parse/print round-trips.
                if !doc.sections.iter().any(|s| s.name == current) {
                    doc.sections.push(Section {
                        name: current.clone(),
                        entries: Vec::new(),
                    });
                }
                seen_any_in_current = true;
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| Error::Meta {
                line: lineno,
                msg: format!("expected 'key = value', got {line:?}"),
            })?;
            let key = key.trim();
            if !valid_key(key) {
                return Err(Error::Meta {
                    line: lineno,
                    msg: format!("invalid key {key:?}"),
                });
            }
            let value = unescape(value.trim(), lineno)?;
            doc.append(&current, key, value);
            let _ = seen_any_in_current;
        }
        Ok(doc)
    }

    /// Render the document to text (inverse of [`MetaDoc::parse`]).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for MetaDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sec) in self.sections.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            if !sec.name.is_empty() {
                writeln!(f, "[{}]", sec.name)?;
            }
            for (k, v) in &sec.entries {
                writeln!(f, "{k} = {}", escape(v))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaDoc {
        let mut doc = MetaDoc::new();
        doc.append("snapshot", "crs", "blcr_sim");
        doc.append("snapshot", "interval", "3");
        doc.append("process", "rank", "0");
        doc.append("process", "hostname", "node00");
        doc
    }

    #[test]
    fn get_and_get_all() {
        let mut doc = sample();
        doc.append("ranks", "local_ref", "opal_snapshot_0.ckpt");
        doc.append("ranks", "local_ref", "opal_snapshot_1.ckpt");
        assert_eq!(doc.get("snapshot", "crs"), Some("blcr_sim"));
        assert_eq!(doc.get("snapshot", "missing"), None);
        assert_eq!(doc.get("nope", "crs"), None);
        assert_eq!(
            doc.get_all("ranks", "local_ref"),
            vec!["opal_snapshot_0.ckpt", "opal_snapshot_1.ckpt"]
        );
    }

    #[test]
    fn set_replaces_all() {
        let mut doc = sample();
        doc.append("snapshot", "interval", "4");
        doc.set("snapshot", "interval", "5");
        assert_eq!(doc.get_all("snapshot", "interval"), vec!["5"]);
    }

    #[test]
    fn remove_value_and_section() {
        let mut doc = sample();
        doc.append("global", "interval", "1");
        doc.append("global", "interval", "2");
        assert_eq!(doc.remove_value("global", "interval", "1"), 1);
        assert_eq!(doc.get_all("global", "interval"), vec!["2"]);
        assert_eq!(doc.remove_value("global", "interval", "9"), 0);
        assert!(doc.remove_section("process"));
        assert!(!doc.remove_section("process"));
        assert_eq!(doc.get("process", "rank"), None);
    }

    #[test]
    fn parse_print_roundtrip() {
        let doc = sample();
        let text = doc.render();
        let back = MetaDoc::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn multiline_value_roundtrip() {
        let mut doc = MetaDoc::new();
        doc.append("launch", "cmdline", "mpirun -np 4 \\\n  ./app");
        doc.append("launch", "note", "back\\slash and\nnewline\r");
        let back = MetaDoc::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\n\n[s]\n# inner\nk = v\n";
        let doc = MetaDoc::parse(text).unwrap();
        assert_eq!(doc.get("s", "k"), Some("v"));
    }

    #[test]
    fn unnamed_leading_section() {
        let text = "top = 1\n[s]\nk = v\n";
        let doc = MetaDoc::parse(text).unwrap();
        assert_eq!(doc.get("", "top"), Some("1"));
    }

    #[test]
    fn value_may_contain_equals() {
        let doc = MetaDoc::parse("[s]\nk = a=b=c\n").unwrap();
        assert_eq!(doc.get("s", "k"), Some("a=b=c"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = MetaDoc::parse("[s]\nnot a kv line\n").unwrap_err();
        match err {
            Error::Meta { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = MetaDoc::parse("[unterminated\n").unwrap_err();
        assert!(matches!(err, Error::Meta { line: 1, .. }));
    }

    #[test]
    fn bad_escape_rejected() {
        assert!(MetaDoc::parse("[s]\nk = bad\\q\n").is_err());
        assert!(MetaDoc::parse("[s]\nk = dangling\\\n").is_err());
    }

    #[test]
    fn get_parsed_types() {
        let doc = sample();
        assert_eq!(doc.get_parsed::<u64>("snapshot", "interval"), Some(3));
        assert_eq!(doc.get_parsed::<u64>("snapshot", "crs"), None);
    }

    #[test]
    #[should_panic(expected = "invalid metadata key")]
    fn invalid_key_panics_on_append() {
        let mut doc = MetaDoc::new();
        doc.append("s", "bad key", "v");
    }

    #[test]
    fn empty_section_roundtrips() {
        let doc = MetaDoc::parse("[empty]\n[full]\nk = v\n").unwrap();
        let back = MetaDoc::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.sections().len(), 2);
    }

    #[test]
    fn section_map_last_wins() {
        let mut doc = MetaDoc::new();
        doc.append("s", "k", "1");
        doc.append("s", "k", "2");
        let map = doc.section_map("s");
        assert_eq!(map.get("k").map(String::as_str), Some("2"));
    }

    #[test]
    fn require_reports_missing_key() {
        let doc = sample();
        assert!(doc.require("snapshot", "crs").is_ok());
        let err = doc.require("snapshot", "zzz").unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }
}
