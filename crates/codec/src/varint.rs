//! LEB128 variable-length integers with zigzag encoding for signed values.
//!
//! Context files are dominated by small integers (ranks, tags, interval
//! numbers, sequence counts), so a varint representation keeps process
//! images compact without a compression pass.

use crate::error::{Error, Result};

/// Maximum number of bytes a 64-bit LEB128 varint can occupy.
pub const MAX_VARINT64_LEN: usize = 10;

/// Append `value` to `out` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `value` using zigzag-then-LEB128 encoding.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Map a signed integer onto an unsigned one so small magnitudes stay small.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Decode an unsigned varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let start = *pos;
    let mut shift = 0u32;
    let mut value = 0u64;
    loop {
        let byte = *buf.get(*pos).ok_or(Error::UnexpectedEof { offset: *pos })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::VarintOverflow { offset: start });
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::VarintOverflow { offset: start });
        }
    }
}

/// Decode a zigzag signed varint from `buf` starting at `*pos`.
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_u64(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) -> u64 {
        let mut out = Vec::new();
        write_u64(&mut out, v);
        let mut pos = 0;
        let back = read_u64(&out, &mut pos).unwrap();
        assert_eq!(pos, out.len(), "all bytes consumed");
        back
    }

    fn roundtrip_i(v: i64) -> i64 {
        let mut out = Vec::new();
        write_i64(&mut out, v);
        let mut pos = 0;
        read_i64(&out, &mut pos).unwrap()
    }

    #[test]
    fn unsigned_roundtrip_edges() {
        for v in [0, 1, 127, 128, 255, 256, 16383, 16384, u64::MAX, u64::MAX - 1] {
            assert_eq!(roundtrip_u(v), v);
        }
    }

    #[test]
    fn signed_roundtrip_edges() {
        for v in [0, -1, 1, i64::MIN, i64::MAX, -64, 63, -65, 64] {
            assert_eq!(roundtrip_i(v), v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..=127u64 {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(out.len(), 1);
        }
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        let mut out = Vec::new();
        write_u64(&mut out, u64::MAX);
        assert_eq!(out.len(), MAX_VARINT64_LEN);
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut out = Vec::new();
        write_u64(&mut out, u64::from(u32::MAX));
        out.pop();
        let mut pos = 0;
        assert!(matches!(
            read_u64(&out, &mut pos),
            Err(Error::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_overflow() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(Error::VarintOverflow { .. })
        ));
    }

    #[test]
    fn tenth_byte_overflow_bits_rejected() {
        // 9 continuation bytes then a final byte with bits above the 64th.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert!(matches!(
            read_u64(&buf, &mut pos),
            Err(Error::VarintOverflow { .. })
        ));
    }
}
