//! CRC-32 (IEEE 802.3 polynomial) used to checksum checkpoint context files.
//!
//! A restarted process image that has been truncated or bit-flipped on disk
//! must fail loudly at restart time, not resume with corrupt state. Every
//! context frame written by the CRS components carries a CRC-32 of its
//! payload (see [`crate::frame`]), and the incremental checkpointer digests
//! every chunk (see [`crate::chunk`]) — so this routine sits on the
//! checkpoint critical path and is implemented with slicing-by-8 (eight
//! bytes folded per table round). The classic 256-entry single-table path
//! is kept as [`Crc32::update_bytewise`]: it handles the unaligned tail and
//! serves as the reference the sliced path is tested against.

/// Reflected polynomial for CRC-32/IEEE (the one used by zlib, Ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The eight derived tables for slicing-by-8: `tables[j][b]` is the CRC of
/// byte `b` followed by `j` zero bytes, so eight per-byte lookups can be
/// XOR-combined to advance the state by a whole 64-bit word at once.
static SLICE_TABLES: std::sync::OnceLock<Vec<[u32; 256]>> = std::sync::OnceLock::new();

fn slice_tables() -> &'static [[u32; 256]] {
    SLICE_TABLES.get_or_init(|| {
        let mut tables: Vec<[u32; 256]> = vec![TABLE];
        for _ in 1..8 {
            let prev = tables.last().copied().unwrap_or(TABLE);
            let next: [u32; 256] = core::array::from_fn(|i| {
                let c = prev.get(i).copied().unwrap_or(0);
                (c >> 8) ^ lut(&TABLE, c & 0xff)
            });
            tables.push(next);
        }
        tables
    })
}

/// Bounds-checked table lookup (the low byte of `idx` is always in range,
/// so the fallback value is unreachable; it keeps the lookup panic-free).
#[inline]
fn lut(table: &[u32; 256], idx: u32) -> u32 {
    table.get(idx as usize).copied().unwrap_or(0)
}

#[inline]
fn slice_lut(tables: &[[u32; 256]], j: usize, idx: u32) -> u32 {
    tables.get(j).map(|t| lut(t, idx)).unwrap_or(0)
}

/// Classic one-table folding loop, also the remainder path of `update`.
#[inline]
fn fold_bytewise(mut crc: u32, data: &[u8]) -> u32 {
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum (slicing-by-8 fast path).
    pub fn update(&mut self, data: &[u8]) {
        let tables = slice_tables();
        let mut crc = self.state;
        let mut words = data.chunks_exact(8);
        for word in words.by_ref() {
            match word.split_first_chunk::<4>() {
                Some((lo4, hi4)) => {
                    let lo = crc ^ u32::from_le_bytes(*lo4);
                    let hi = match hi4.split_first_chunk::<4>() {
                        Some((h, _)) => u32::from_le_bytes(*h),
                        None => 0, // unreachable: the word is exactly 8 bytes
                    };
                    crc = slice_lut(tables, 7, lo & 0xff)
                        ^ slice_lut(tables, 6, (lo >> 8) & 0xff)
                        ^ slice_lut(tables, 5, (lo >> 16) & 0xff)
                        ^ slice_lut(tables, 4, lo >> 24)
                        ^ slice_lut(tables, 3, hi & 0xff)
                        ^ slice_lut(tables, 2, (hi >> 8) & 0xff)
                        ^ slice_lut(tables, 1, (hi >> 16) & 0xff)
                        ^ slice_lut(tables, 0, hi >> 24);
                }
                None => crc = fold_bytewise(crc, word),
            }
        }
        self.state = fold_bytewise(crc, words.remainder());
    }

    /// Fold `data` byte-at-a-time through the single 256-entry table — the
    /// pre-slicing algorithm, kept as a fallback and as the reference
    /// implementation the fast path is verified against.
    pub fn update_bytewise(&mut self, data: &[u8]) {
        self.state = fold_bytewise(self.state, data);
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn sliced_matches_bytewise_on_random_inputs() {
        // SplitMix64: deterministic pseudo-random lengths and contents.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for trial in 0..200 {
            // Exercise every alignment class: short tails, word multiples,
            // and lengths straddling the 8-byte fold boundary.
            let len = (next() % 513) as usize + (trial % 9);
            let data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let mut fast = Crc32::new();
            fast.update(&data);
            let mut slow = Crc32::new();
            slow.update_bytewise(&data);
            assert_eq!(
                fast.finalize(),
                slow.finalize(),
                "sliced and bytewise CRC diverge on len {len}"
            );
            // Split the same input at a random point: mixing the two entry
            // points mid-stream must also agree.
            let cut = (next() as usize) % (len + 1);
            let mut mixed = Crc32::new();
            let (head, tail) = data.split_at(cut);
            mixed.update_bytewise(head);
            mixed.update(tail);
            assert_eq!(mixed.finalize(), fast.finalize());
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 512];
        let base = crc32(&data);
        data[200] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"snapshot");
        assert_eq!(h.finalize(), h.finalize());
    }
}
