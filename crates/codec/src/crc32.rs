//! CRC-32 (IEEE 802.3 polynomial) used to checksum checkpoint context files.
//!
//! A restarted process image that has been truncated or bit-flipped on disk
//! must fail loudly at restart time, not resume with corrupt state. Every
//! context frame written by the CRS components carries a CRC-32 of its
//! payload (see [`crate::frame`]).

/// Reflected polynomial for CRC-32/IEEE (the one used by zlib, Ethernet).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ u32::from(byte)) & 0xff) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut h = Crc32::new();
        for chunk in data.chunks(37) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 512];
        let base = crc32(&data);
        data[200] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"snapshot");
        assert_eq!(h.finalize(), h.finalize());
    }
}
