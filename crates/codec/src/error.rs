//! Error type shared by the binary and metadata codecs.

use std::fmt;

/// Result alias used throughout the codec crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding checkpoint data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A custom message produced by serde's derive machinery.
    Message(String),
    /// The input ended before a complete value was decoded.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// An unknown type tag was encountered at the given offset.
    BadTag {
        /// The tag byte that was read.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A tag was valid but not the one required by the caller.
    WrongTag {
        /// Human-readable name of what was expected.
        expected: &'static str,
        /// The tag byte that was actually read.
        found: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A varint ran past its maximum encodable width.
    VarintOverflow {
        /// Byte offset at which decoding started.
        offset: usize,
    },
    /// A string field contained invalid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        offset: usize,
    },
    /// A char value was not a valid Unicode scalar.
    InvalidChar {
        /// The raw 32-bit value.
        value: u32,
    },
    /// Trailing bytes remained after the top-level value was decoded.
    TrailingBytes {
        /// Number of bytes left over.
        remaining: usize,
    },
    /// A length prefix exceeded the remaining input (corruption guard).
    LengthOverrun {
        /// The declared length.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
        /// Byte offset of the length prefix.
        offset: usize,
    },
    /// The checksum stored in a context-file frame did not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A frame header had an unknown magic number or version.
    BadFrame(String),
    /// A metadata document failed to parse.
    Meta {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(m) => write!(f, "{m}"),
            Error::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at offset {offset}")
            }
            Error::BadTag { tag, offset } => {
                write!(f, "unknown type tag {tag:#04x} at offset {offset}")
            }
            Error::WrongTag {
                expected,
                found,
                offset,
            } => write!(
                f,
                "expected {expected} but found tag {found:#04x} at offset {offset}"
            ),
            Error::VarintOverflow { offset } => {
                write!(f, "varint overflow at offset {offset}")
            }
            Error::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 in string at offset {offset}")
            }
            Error::InvalidChar { value } => {
                write!(f, "invalid char scalar value {value:#x}")
            }
            Error::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after top-level value")
            }
            Error::LengthOverrun {
                declared,
                remaining,
                offset,
            } => write!(
                f,
                "declared length {declared} exceeds remaining {remaining} bytes at offset {offset}"
            ),
            Error::ChecksumMismatch { stored, computed } => write!(
                f,
                "context frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Error::BadFrame(m) => write!(f, "bad context frame: {m}"),
            Error::Meta { line, msg } => write!(f, "metadata parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::WrongTag {
            expected: "struct",
            found: 0x42,
            offset: 7,
        };
        let s = e.to_string();
        assert!(s.contains("struct"));
        assert!(s.contains("0x42"));
        assert!(s.contains("7"));
    }

    #[test]
    fn checksum_mismatch_mentions_both_values() {
        let e = Error::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        let s = e.to_string();
        assert!(s.contains("0x00000001"));
        assert!(s.contains("0x00000002"));
    }

    #[test]
    fn serde_custom_maps_to_message() {
        let e = <Error as serde::ser::Error>::custom("boom");
        assert_eq!(e, Error::Message("boom".into()));
        let e = <Error as serde::de::Error>::custom("bust");
        assert_eq!(e, Error::Message("bust".into()));
    }
}
