//! Serialization substrate for checkpoint/restart context files and snapshot
//! metadata.
//!
//! Open MPI's checkpoint/restart infrastructure persists two kinds of data:
//!
//! * **Context files** — the opaque, binary image of a single process
//!   produced by a CRS component (BLCR writes `context.<pid>`; our simulated
//!   system-level checkpointer writes an equivalent binary file). These are
//!   encoded with the self-describing binary format in [`binary`], and
//!   wrapped in a checksummed frame ([`frame`]) so corruption is detected at
//!   restart time rather than producing a silently wrong process image.
//!
//! * **Metadata files** — the human-readable `snapshot_meta.data` files that
//!   live inside local and global snapshot references and record which
//!   checkpointer was used, the checkpoint interval, process information, and
//!   the runtime parameters of the original launch. These use the line
//!   oriented format in [`meta`].
//!
//! Neither `serde_json` nor `bincode` is in the approved dependency set, so
//! both formats are implemented from scratch here. Both are round-trip exact
//! (property tested) and versioned.

//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct RankState { rank: u32, iteration: u64, data: Vec<u8> }
//!
//! let state = RankState { rank: 3, iteration: 42, data: vec![1, 2, 3] };
//! // Context-file round trip: encode, frame with a CRC, unframe, decode.
//! let payload = codec::to_bytes(&state).unwrap();
//! let framed = codec::write_frame(&payload);
//! let back: RankState = codec::from_bytes(codec::read_frame(&framed).unwrap()).unwrap();
//! assert_eq!(back, state);
//!
//! // Snapshot metadata round trip.
//! let mut meta = codec::MetaDoc::new();
//! meta.set("snapshot", "crs", "blcr_sim");
//! let reparsed = codec::MetaDoc::parse(&meta.render()).unwrap();
//! assert_eq!(reparsed.get("snapshot", "crs"), Some("blcr_sim"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod chunk;
pub mod crc32;
pub mod error;
pub mod frame;
pub mod meta;
pub mod varint;

pub use binary::{from_bytes, to_bytes};
pub use chunk::{changed_chunks, chunk_digest, ChunkManifest, ChunkRecord, SectionManifest};
pub use error::{Error, Result};
pub use frame::{read_frame, write_frame, write_frame_into};
pub use meta::MetaDoc;
