//! Checksummed frame wrapping a checkpoint context payload.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------+---------+-------------+-------------+-----------+
//! | magic  | version | payload len | payload crc |  payload  |
//! | 4 B    | 2 B     | 8 B         | 4 B         |  len B    |
//! +--------+---------+-------------+-------------+-----------+
//! ```
//!
//! The magic (`OCRX`) identifies a context file written by this
//! implementation; the version allows the on-disk format to evolve; the
//! CRC-32 detects truncation and corruption before a process image is
//! resurrected from it.

use crate::crc32::crc32;
use crate::error::{Error, Result};

/// Magic bytes at the start of every context file.
pub const MAGIC: [u8; 4] = *b"OCRX";

/// Current frame format version.
pub const VERSION: u16 = 1;

/// Fixed number of header bytes preceding the payload.
pub const HEADER_LEN: usize = 4 + 2 + 8 + 4;

/// Wrap `payload` in a checksummed frame.
pub fn write_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    write_frame_into(&mut out, payload);
    out
}

/// Wrap `payload` in a checksummed frame, reusing `out`'s allocation.
///
/// `out` is cleared first; after the call it holds exactly what
/// [`write_frame`] would have returned. Hot paths that frame many
/// payloads (the chunk store's blob writer) call this with a pooled
/// buffer so steady-state framing allocates O(pool) buffers, not
/// O(payloads).
pub fn write_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.clear();
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Fixed-size header field at `at`, or a truncation error.
fn header_field<const N: usize>(data: &[u8], at: usize) -> Result<[u8; N]> {
    data.get(at..at + N)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| {
            Error::BadFrame(format!(
                "file too short for frame header: {} bytes",
                data.len()
            ))
        })
}

/// Unwrap a frame, validating magic, version, length, and checksum.
pub fn read_frame(data: &[u8]) -> Result<&[u8]> {
    if data.len() < HEADER_LEN {
        return Err(Error::BadFrame(format!(
            "file too short for frame header: {} bytes",
            data.len()
        )));
    }
    if header_field::<4>(data, 0)? != MAGIC {
        return Err(Error::BadFrame("bad magic (not a context file)".into()));
    }
    let version = u16::from_le_bytes(header_field(data, 4)?);
    if version != VERSION {
        return Err(Error::BadFrame(format!(
            "unsupported context format version {version} (this build reads {VERSION})"
        )));
    }
    let len = u64::from_le_bytes(header_field(data, 6)?) as usize;
    let stored = u32::from_le_bytes(header_field(data, 14)?);
    let body = data.split_at(HEADER_LEN).1;
    if body.len() != len {
        return Err(Error::BadFrame(format!(
            "payload length mismatch: header says {len}, file has {}",
            body.len()
        )));
    }
    let computed = crc32(body);
    if computed != stored {
        return Err(Error::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let payload = b"process image bytes".to_vec();
        let framed = write_frame(&payload);
        assert_eq!(read_frame(&framed).unwrap(), payload.as_slice());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = write_frame(&[]);
        assert_eq!(read_frame(&framed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn corruption_detected() {
        let mut framed = write_frame(b"state");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert!(matches!(
            read_frame(&framed),
            Err(Error::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let framed = write_frame(b"a longer payload that we will cut short");
        let cut = &framed[..framed.len() - 5];
        assert!(matches!(read_frame(cut), Err(Error::BadFrame(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut framed = write_frame(b"x");
        framed[0] = b'Z';
        let err = read_frame(&framed).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn future_version_rejected() {
        let mut framed = write_frame(b"x");
        framed[4] = 0xFF;
        let err = read_frame(&framed).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn short_file_rejected() {
        assert!(matches!(read_frame(b"OC"), Err(Error::BadFrame(_))));
    }
}
