//! Fixed-size chunking and content digests for incremental checkpoints.
//!
//! An incremental checkpoint ships only the chunks of a process image that
//! changed since the previous interval. The unit of change detection is a
//! fixed-size chunk of a named image section; each chunk is identified by
//! its position (`chunk_id`) and summarized by a fast 64-bit content digest.
//! A [`ChunkManifest`] records, per section, the `(chunk_id, digest, len)`
//! triple of every chunk — enough to (a) diff two intervals of the same
//! section without keeping the old bytes around, and (b) verify a
//! reassembled image (base + delta chain replay) against what the
//! checkpointer saw when it wrote the newest delta.
//!
//! The manifest is stored in snapshot *metadata* (a [`crate::MetaDoc`]
//! value), so it renders to and parses from a compact single-line string.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Manifest wire-format version (leading token of [`ChunkManifest::render`]).
pub const MANIFEST_VERSION: u32 = 1;

/// Fast 64-bit content digest of one chunk.
///
/// Word-at-a-time FNV-style multiply/xor mix with a length seed and a
/// murmur-style finalizer. This is a *change detector*, not a cryptographic
/// hash: it must be cheap (it runs over every chunk of every section on
/// every checkpoint) and must make accidental collisions — the same chunk
/// slot holding different bytes across intervals — vanishingly unlikely.
pub fn chunk_digest(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3; // FNV-1a 64 prime
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ (data.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut words = data.chunks_exact(8);
    for word in words.by_ref() {
        let v = match word.split_first_chunk::<8>() {
            Some((w, _)) => u64::from_le_bytes(*w),
            None => 0, // unreachable: chunks_exact(8) yields 8-byte slices
        };
        h = (h ^ v).wrapping_mul(PRIME);
        h ^= h.rotate_right(29);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// Identity and digest of one fixed-size chunk of a section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Position of the chunk: byte offset is `id * chunk_bytes`.
    pub id: u32,
    /// Content digest ([`chunk_digest`]) of the chunk's bytes.
    pub digest: u64,
    /// Chunk length in bytes (only the final chunk may be short).
    pub len: u32,
}

/// Chunk listing of one named image section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionManifest {
    /// Section name (as registered with the process image).
    pub name: String,
    /// Total section length in bytes.
    pub total_len: u64,
    /// Chunk records in id order, covering the section exactly.
    pub chunks: Vec<ChunkRecord>,
}

impl SectionManifest {
    /// Chunk `bytes` into `chunk_bytes`-sized pieces and digest each.
    pub fn of(name: &str, bytes: &[u8], chunk_bytes: usize) -> Self {
        let step = chunk_bytes.max(1);
        SectionManifest {
            name: name.to_string(),
            total_len: bytes.len() as u64,
            chunks: bytes
                .chunks(step)
                .enumerate()
                .map(|(i, c)| ChunkRecord {
                    id: i as u32,
                    digest: chunk_digest(c),
                    len: c.len() as u32,
                })
                .collect(),
        }
    }
}

/// Per-section chunk manifest of a whole process image at one interval.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChunkManifest {
    /// Chunk size every section was cut with.
    pub chunk_bytes: u32,
    /// One entry per image section, in image order.
    pub sections: Vec<SectionManifest>,
}

impl ChunkManifest {
    /// Build the manifest of a full image presented as `(name, bytes)`
    /// sections in image order.
    pub fn of_sections<'a>(
        sections: impl IntoIterator<Item = (&'a str, &'a [u8])>,
        chunk_bytes: usize,
    ) -> Self {
        ChunkManifest {
            chunk_bytes: chunk_bytes.max(1) as u32,
            sections: sections
                .into_iter()
                .map(|(name, bytes)| SectionManifest::of(name, bytes, chunk_bytes))
                .collect(),
        }
    }

    /// Look up one section's manifest by name.
    pub fn section(&self, name: &str) -> Option<&SectionManifest> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Sum of all section lengths.
    pub fn total_bytes(&self) -> u64 {
        self.sections.iter().map(|s| s.total_len).sum()
    }

    /// Render to the compact single-line form stored in snapshot metadata:
    /// `v1 c<chunk_bytes>|<name>=<total_len>:<id>.<digest>.<len>,...|...`
    /// (section names percent-escaped; digests in hex).
    pub fn render(&self) -> String {
        let mut out = format!("v{MANIFEST_VERSION} c{}", self.chunk_bytes);
        for s in &self.sections {
            out.push('|');
            out.push_str(&escape_name(&s.name));
            out.push('=');
            out.push_str(&s.total_len.to_string());
            for (i, c) in s.chunks.iter().enumerate() {
                out.push(if i == 0 { ':' } else { ',' });
                out.push_str(&format!("{}.{:x}.{}", c.id, c.digest, c.len));
            }
        }
        out
    }

    /// Parse the [`render`](ChunkManifest::render) form back.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |what: &str| Error::Message(format!("chunk manifest: {what} in {text:?}"));
        let mut parts = text.split('|');
        let header = parts.next().ok_or_else(|| bad("empty input"))?;
        let (version, chunk_bytes) = header
            .strip_prefix('v')
            .and_then(|rest| rest.split_once(" c"))
            .ok_or_else(|| bad("malformed header"))?;
        if version.parse::<u32>().ok() != Some(MANIFEST_VERSION) {
            return Err(bad("unsupported version"));
        }
        let chunk_bytes: u32 = chunk_bytes.parse().map_err(|_| bad("bad chunk size"))?;
        let mut sections = Vec::new();
        for part in parts {
            let (name, rest) = part.split_once('=').ok_or_else(|| bad("section missing '='"))?;
            let (total_len, chunk_list) = match rest.split_once(':') {
                Some((t, c)) => (t, Some(c)),
                None => (rest, None),
            };
            let total_len: u64 = total_len.parse().map_err(|_| bad("bad section length"))?;
            let mut chunks = Vec::new();
            for triple in chunk_list.iter().flat_map(|c| c.split(',')) {
                let mut fields = triple.split('.');
                let id = fields.next().and_then(|f| f.parse().ok());
                let digest = fields.next().and_then(|f| u64::from_str_radix(f, 16).ok());
                let len = fields.next().and_then(|f| f.parse().ok());
                match (id, digest, len, fields.next()) {
                    (Some(id), Some(digest), Some(len), None) => {
                        chunks.push(ChunkRecord { id, digest, len })
                    }
                    _ => return Err(bad("malformed chunk record")),
                }
            }
            sections.push(SectionManifest {
                name: unescape_name(name)?,
                total_len,
                chunks,
            });
        }
        Ok(ChunkManifest {
            chunk_bytes,
            sections,
        })
    }

    /// Verify a reassembled image against this manifest. Returns `None`
    /// when every section matches (same names in the same order, same
    /// lengths, same chunk digests), or a description of the first
    /// divergence — the loud-failure message restart surfaces when a delta
    /// chain was truncated or corrupted.
    pub fn mismatch<'a>(
        &self,
        sections: impl IntoIterator<Item = (&'a str, &'a [u8])>,
    ) -> Option<String> {
        let mut seen = 0usize;
        for (i, (name, bytes)) in sections.into_iter().enumerate() {
            seen = i + 1;
            let Some(expected) = self.sections.get(i) else {
                return Some(format!("unexpected extra section {name:?} at index {i}"));
            };
            if expected.name != name {
                return Some(format!(
                    "section {i} is {name:?}, manifest expects {:?}",
                    expected.name
                ));
            }
            if expected.total_len != bytes.len() as u64 {
                return Some(format!(
                    "section {name:?} is {} bytes, manifest expects {}",
                    bytes.len(),
                    expected.total_len
                ));
            }
            let actual = SectionManifest::of(name, bytes, self.chunk_bytes as usize);
            for (got, want) in actual.chunks.iter().zip(&expected.chunks) {
                if got != want {
                    return Some(format!(
                        "section {name:?} chunk {} digest mismatch \
                         (got {:x}/{}B, manifest has {:x}/{}B)",
                        want.id, got.digest, got.len, want.digest, want.len
                    ));
                }
            }
        }
        if seen != self.sections.len() {
            return Some(format!(
                "image has {seen} sections, manifest expects {}",
                self.sections.len()
            ));
        }
        None
    }
}

/// Chunk ids of `cur` that must ship in a delta against `prev`: chunks
/// whose digest or length changed, plus chunks beyond `prev`'s end. With
/// no previous section (new section this interval) every chunk is dirty.
pub fn changed_chunks(prev: Option<&SectionManifest>, cur: &SectionManifest) -> Vec<u32> {
    cur.chunks
        .iter()
        .filter(|c| {
            prev.and_then(|p| p.chunks.get(c.id as usize))
                .map_or(true, |old| old != *c)
        })
        .map(|c| c.id)
        .collect()
}

fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            '%' | '|' | '=' | ':' | ',' | '\n' | '\r' => {
                out.push('%');
                out.push_str(&format!("{:02x}", ch as u32));
            }
            _ => out.push(ch),
        }
    }
    out
}

fn unescape_name(escaped: &str) -> Result<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        let code = match (hi, lo) {
            (Some(h), Some(l)) => u32::from_str_radix(&format!("{h}{l}"), 16).ok(),
            _ => None,
        };
        match code.and_then(char::from_u32) {
            Some(decoded) => out.push(decoded),
            None => {
                return Err(Error::Message(format!(
                    "chunk manifest: bad escape in section name {escaped:?}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_changes_with_content_and_length() {
        let a = chunk_digest(b"hello world");
        let b = chunk_digest(b"hello worle");
        let c = chunk_digest(b"hello worl");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, chunk_digest(b"hello world"));
        // Trailing zeros are not confused with a shorter chunk.
        assert_ne!(chunk_digest(&[0u8; 16]), chunk_digest(&[0u8; 8]));
    }

    #[test]
    fn chunking_covers_the_section_exactly() {
        let bytes: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let s = SectionManifest::of("app", &bytes, 4096);
        assert_eq!(s.total_len, 10_000);
        assert_eq!(s.chunks.len(), 3);
        assert_eq!(s.chunks[0].len, 4096);
        assert_eq!(s.chunks[1].len, 4096);
        assert_eq!(s.chunks[2].len, 10_000 - 2 * 4096);
        assert_eq!(s.chunks.iter().map(|c| u64::from(c.len)).sum::<u64>(), 10_000);
        for (i, c) in s.chunks.iter().enumerate() {
            assert_eq!(c.id as usize, i);
        }
        // Empty section: zero chunks, zero length.
        let empty = SectionManifest::of("empty", &[], 4096);
        assert_eq!(empty.total_len, 0);
        assert!(empty.chunks.is_empty());
    }

    #[test]
    fn render_parse_roundtrip_with_awkward_names() {
        let sections: Vec<(String, Vec<u8>)> = vec![
            ("app".into(), (0..200u8).collect()),
            ("pml|state=weird:1,2%".into(), vec![7; 5000]),
            ("empty".into(), Vec::new()),
        ];
        let m = ChunkManifest::of_sections(
            sections.iter().map(|(n, b)| (n.as_str(), b.as_slice())),
            1024,
        );
        let back = ChunkManifest::parse(&m.render()).unwrap();
        assert_eq!(back, m);
        assert!(!m.render().contains('\n'));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChunkManifest::parse("").is_err());
        assert!(ChunkManifest::parse("v2 c4096").is_err());
        assert!(ChunkManifest::parse("v1 c4096|app").is_err());
        assert!(ChunkManifest::parse("v1 c4096|app=10:0.zz.10").is_err());
        assert!(ChunkManifest::parse("v1 c4096|a%zz=0").is_err());
    }

    #[test]
    fn changed_chunks_finds_exactly_the_dirty_ones() {
        let mut bytes = vec![0u8; 10 * 64];
        let before = SectionManifest::of("app", &bytes, 64);
        // Dirty chunks 2 and 7.
        bytes[2 * 64 + 5] = 1;
        bytes[7 * 64] = 9;
        let after = SectionManifest::of("app", &bytes, 64);
        assert_eq!(changed_chunks(Some(&before), &after), vec![2, 7]);
        // Growth: the new tail chunks are dirty, as is the previously-final
        // chunk if its bytes changed length.
        bytes.extend_from_slice(&[3u8; 100]);
        let grown = SectionManifest::of("app", &bytes, 64);
        let dirty = changed_chunks(Some(&after), &grown);
        assert!(dirty.contains(&10) && dirty.contains(&11));
        // No base: everything is dirty.
        assert_eq!(changed_chunks(None, &before).len(), before.chunks.len());
        // No change: nothing to ship.
        assert!(changed_chunks(Some(&after), &after).is_empty());
    }

    #[test]
    fn mismatch_pinpoints_divergence() {
        let base: Vec<u8> = (0..100u8).cycle().take(9000).collect();
        let m = ChunkManifest::of_sections([("app", base.as_slice())], 1024);
        assert_eq!(m.mismatch([("app", base.as_slice())]), None);

        let mut flipped = base.clone();
        flipped[5000] ^= 0xFF;
        let msg = m.mismatch([("app", flipped.as_slice())]).unwrap();
        assert!(msg.contains("chunk 4"), "unexpected message: {msg}");

        let truncated = &base[..8000];
        assert!(m.mismatch([("app", truncated)]).unwrap().contains("8000"));
        assert!(m.mismatch([("other", base.as_slice())]).is_some());
        assert!(m.mismatch(std::iter::empty()).is_some());
        assert!(m
            .mismatch([("app", base.as_slice()), ("extra", &[][..])])
            .is_some());
    }

    #[test]
    fn total_bytes_sums_sections() {
        let m = ChunkManifest::of_sections([("a", &[1u8; 10][..]), ("b", &[2u8; 30][..])], 8);
        assert_eq!(m.total_bytes(), 40);
        assert_eq!(m.section("b").unwrap().total_len, 30);
        assert!(m.section("c").is_none());
    }
}
