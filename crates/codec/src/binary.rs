//! Self-describing binary serde format for checkpoint context files.
//!
//! Every value is prefixed with a one-byte type tag, so a reader can skip or
//! introspect values it does not statically know about (needed for
//! `deserialize_any` / `IgnoredAny`, and for forward compatibility between
//! checkpointer versions). Integers use LEB128 varints (zigzag for signed),
//! lengths are varints, strings are UTF-8 with a byte-length prefix, and
//! struct fields are written as `(name, value)` pairs so field reordering
//! between versions does not corrupt restarts.
//!
//! The format is deliberately *not* the most compact possible encoding:
//! checkpoint images are dominated by application byte buffers (stored as
//! raw `Bytes`), and the self-description of the surrounding skeleton is
//! noise by comparison, while the debuggability of a tagged stream is worth
//! a great deal when a restart goes wrong.

use serde::de::{self, Deserialize, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use crate::error::{Error, Result};
use crate::varint;

/// Type tags. Stability matters: context files written by one build must be
/// restartable by another, so tags are append-only.
mod tag {
    pub const UNIT: u8 = 0x00;
    pub const FALSE: u8 = 0x01;
    pub const TRUE: u8 = 0x02;
    pub const INT: u8 = 0x03; // zigzag varint, any signed width
    pub const UINT: u8 = 0x04; // varint, any unsigned width
    pub const I128: u8 = 0x05; // 16 bytes LE
    pub const U128: u8 = 0x06; // 16 bytes LE
    pub const F32: u8 = 0x07; // 4 bytes LE
    pub const F64: u8 = 0x08; // 8 bytes LE
    pub const CHAR: u8 = 0x09; // u32 varint scalar
    pub const STR: u8 = 0x0A; // len varint + UTF-8
    pub const BYTES: u8 = 0x0B; // len varint + raw
    pub const NONE: u8 = 0x0C;
    pub const SOME: u8 = 0x0D; // value
    pub const SEQ: u8 = 0x0E; // count varint + values
    pub const MAP: u8 = 0x0F; // count varint + (key value)*
    pub const STRUCT: u8 = 0x10; // count varint + (name-str value)*
    pub const UNIT_VARIANT: u8 = 0x11; // name-str
    pub const NEWTYPE_VARIANT: u8 = 0x12; // name-str + value
    pub const TUPLE_VARIANT: u8 = 0x13; // name-str + count + values
    pub const STRUCT_VARIANT: u8 = 0x14; // name-str + count + (name value)*
}

/// Serialize `value` into a tagged binary byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut ser = Serializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserialize a value of type `T` from bytes produced by [`to_bytes`].
///
/// Fails if any bytes are left over, which catches framing bugs early.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = Deserializer { buf: bytes, pos: 0 };
    let value = T::deserialize(&mut de)?;
    if de.pos != bytes.len() {
        return Err(Error::TrailingBytes {
            remaining: bytes.len() - de.pos,
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    fn put_str_raw(&mut self, s: &str) {
        varint::write_u64(&mut self.out, s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn put_tagged_str(&mut self, s: &str) {
        self.out.push(tag::STR);
        self.put_str_raw(s);
    }
}

/// Compound serializer for sequences/maps with possibly unknown length.
///
/// serde permits `serialize_seq(None)`; since the wire format carries a
/// count prefix, unknown-length compounds buffer their elements and patch
/// the count in afterwards.
struct Compound<'a> {
    ser: &'a mut Serializer,
    /// Bytes of the buffered elements (only used when length was unknown).
    buffered: Option<Vec<u8>>,
    count: u64,
}

impl<'a> Compound<'a> {
    fn begin(ser: &'a mut Serializer, len: Option<usize>) -> Self {
        match len {
            Some(n) => {
                varint::write_u64(&mut ser.out, n as u64);
                Compound {
                    ser,
                    buffered: None,
                    count: 0,
                }
            }
            None => Compound {
                ser,
                buffered: Some(Vec::new()),
                count: 0,
            },
        }
    }

    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.count += 1;
        match &mut self.buffered {
            Some(buf) => {
                let mut sub = Serializer {
                    out: std::mem::take(buf),
                };
                value.serialize(&mut sub)?;
                *buf = sub.out;
                Ok(())
            }
            None => value.serialize(&mut *self.ser),
        }
    }

    fn finish(self) -> Result<()> {
        if let Some(buf) = self.buffered {
            varint::write_u64(&mut self.ser.out, self.count);
            self.ser.out.extend_from_slice(&buf);
        }
        Ok(())
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn is_human_readable(&self) -> bool {
        false
    }

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(if v { tag::TRUE } else { tag::FALSE });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.push(tag::INT);
        varint::write_i64(&mut self.out, v);
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<()> {
        self.out.push(tag::I128);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.push(tag::UINT);
        varint::write_u64(&mut self.out, v);
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.push(tag::U128);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.push(tag::F32);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.push(tag::F64);
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.out.push(tag::CHAR);
        varint::write_u64(&mut self.out, u64::from(u32::from(v)));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_tagged_str(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.out.push(tag::BYTES);
        varint::write_u64(&mut self.out, v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.push(tag::NONE);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(tag::SOME);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        self.out.push(tag::UNIT);
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        self.out.push(tag::UNIT_VARIANT);
        self.put_str_raw(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        // Newtype structs are transparent: `Rank(u32)` encodes as its inner.
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.out.push(tag::NEWTYPE_VARIANT);
        self.put_str_raw(variant);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        self.out.push(tag::SEQ);
        Ok(Compound::begin(self, len))
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.out.push(tag::TUPLE_VARIANT);
        self.put_str_raw(variant);
        Ok(Compound::begin(self, Some(len)))
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        self.out.push(tag::MAP);
        Ok(Compound::begin(self, len))
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<Self::SerializeStruct> {
        self.out.push(tag::STRUCT);
        Ok(Compound::begin(self, Some(len)))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.out.push(tag::STRUCT_VARIANT);
        self.put_str_raw(variant);
        Ok(Compound::begin(self, Some(len)))
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        // Keys and values are interleaved; count each pair once (on the key).
        self.count += 1;
        match &mut self.buffered {
            Some(buf) => {
                let mut sub = Serializer {
                    out: std::mem::take(buf),
                };
                key.serialize(&mut sub)?;
                *buf = sub.out;
                Ok(())
            }
            None => key.serialize(&mut *self.ser),
        }
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        match &mut self.buffered {
            Some(buf) => {
                let mut sub = Serializer {
                    out: std::mem::take(buf),
                };
                value.serialize(&mut sub)?;
                *buf = sub.out;
                Ok(())
            }
            None => value.serialize(&mut *self.ser),
        }
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        debug_assert!(self.buffered.is_none(), "structs always have known len");
        self.ser.put_str_raw(key);
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        self.ser.put_str_raw(key);
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        self.finish()
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct Deserializer<'de> {
    buf: &'de [u8],
    pos: usize,
}

impl<'de> Deserializer<'de> {
    fn peek_tag(&self) -> Result<u8> {
        self.buf
            .get(self.pos)
            .copied()
            .ok_or(Error::UnexpectedEof { offset: self.pos })
    }

    fn take_tag(&mut self) -> Result<u8> {
        let t = self.peek_tag()?;
        self.pos += 1;
        Ok(t)
    }

    fn read_len(&mut self) -> Result<usize> {
        let offset = self.pos;
        let len = varint::read_u64(self.buf, &mut self.pos)? as usize;
        let remaining = self.buf.len() - self.pos;
        // A length can never exceed the remaining bytes (each element is at
        // least one byte); this guards against corrupt lengths causing huge
        // allocations.
        if len > remaining {
            return Err(Error::LengthOverrun {
                declared: len,
                remaining,
                offset,
            });
        }
        Ok(len)
    }

    fn read_exact(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let offset = self.pos;
        let bytes = self.read_exact(N)?;
        bytes
            .try_into()
            .map_err(|_| Error::UnexpectedEof { offset })
    }

    fn read_str_raw(&mut self) -> Result<&'de str> {
        let len = self.read_len()?;
        let offset = self.pos;
        let bytes = self.read_exact(len)?;
        std::str::from_utf8(bytes).map_err(|_| Error::InvalidUtf8 { offset })
    }

    /// Drive `visitor` with whatever value is next on the wire.
    fn visit_next<V: Visitor<'de>>(&mut self, visitor: V) -> Result<V::Value> {
        let offset = self.pos;
        let t = self.take_tag()?;
        match t {
            tag::UNIT => visitor.visit_unit(),
            tag::FALSE => visitor.visit_bool(false),
            tag::TRUE => visitor.visit_bool(true),
            tag::INT => {
                let v = varint::read_i64(self.buf, &mut self.pos)?;
                visitor.visit_i64(v)
            }
            tag::UINT => {
                let v = varint::read_u64(self.buf, &mut self.pos)?;
                visitor.visit_u64(v)
            }
            tag::I128 => {
                let raw = self.read_array::<16>()?;
                visitor.visit_i128(i128::from_le_bytes(raw))
            }
            tag::U128 => {
                let raw = self.read_array::<16>()?;
                visitor.visit_u128(u128::from_le_bytes(raw))
            }
            tag::F32 => {
                let raw = self.read_array::<4>()?;
                visitor.visit_f32(f32::from_le_bytes(raw))
            }
            tag::F64 => {
                let raw = self.read_array::<8>()?;
                visitor.visit_f64(f64::from_le_bytes(raw))
            }
            tag::CHAR => {
                let raw = varint::read_u64(self.buf, &mut self.pos)?;
                let scalar =
                    u32::try_from(raw).map_err(|_| Error::InvalidChar { value: u32::MAX })?;
                let c = char::from_u32(scalar).ok_or(Error::InvalidChar { value: scalar })?;
                visitor.visit_char(c)
            }
            tag::STR => {
                let s = self.read_str_raw()?;
                visitor.visit_borrowed_str(s)
            }
            tag::BYTES => {
                let len = self.read_len()?;
                let b = self.read_exact(len)?;
                visitor.visit_borrowed_bytes(b)
            }
            tag::NONE => visitor.visit_none(),
            tag::SOME => visitor.visit_some(&mut *self),
            tag::SEQ => {
                let len = self.read_len()?;
                visitor.visit_seq(SeqAccess {
                    de: self,
                    remaining: len,
                })
            }
            tag::MAP => {
                let len = self.read_len()?;
                visitor.visit_map(MapAccess {
                    de: self,
                    remaining: len,
                    value_pending: false,
                })
            }
            tag::STRUCT => {
                let len = self.read_len()?;
                visitor.visit_map(StructAccess {
                    de: self,
                    remaining: len,
                    value_pending: false,
                })
            }
            tag::UNIT_VARIANT | tag::NEWTYPE_VARIANT | tag::TUPLE_VARIANT
            | tag::STRUCT_VARIANT => {
                // Rewind so EnumAccess re-reads the tag.
                self.pos = offset;
                visitor.visit_enum(EnumAccess { de: self })
            }
            other => Err(Error::BadTag { tag: other, offset }),
        }
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = Error;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
    value_pending: bool,
}

impl<'de> de::MapAccess<'de> for MapAccess<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.value_pending = true;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        debug_assert!(self.value_pending, "next_value without next_key");
        self.value_pending = false;
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Struct fields arrive as raw name strings (no STR tag) followed by values.
struct StructAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
    value_pending: bool,
}

impl<'de> de::MapAccess<'de> for StructAccess<'_, 'de> {
    type Error = Error;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.value_pending = true;
        let name = self.de.read_str_raw()?;
        seed.deserialize(name.into_deserializer()).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        debug_assert!(self.value_pending, "next_value without next_key");
        self.value_pending = false;
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = Error;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant)> {
        let offset = self.de.pos;
        let t = self.de.take_tag()?;
        let kind = match t {
            tag::UNIT_VARIANT => VariantKind::Unit,
            tag::NEWTYPE_VARIANT => VariantKind::Newtype,
            tag::TUPLE_VARIANT => VariantKind::Tuple,
            tag::STRUCT_VARIANT => VariantKind::Struct,
            other => {
                return Err(Error::WrongTag {
                    expected: "enum variant",
                    found: other,
                    offset,
                })
            }
        };
        let name = self.de.read_str_raw()?;
        let value = seed.deserialize(name.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de, kind }))
    }
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple,
    Struct,
}

/// Accessor for a single enum variant's payload.
struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    kind: VariantKind,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<()> {
        match self.kind {
            VariantKind::Unit => Ok(()),
            // Lenient: discard an unexpected payload (e.g. version skew).
            VariantKind::Newtype => {
                de::IgnoredAny::deserialize(&mut *self.de)?;
                Ok(())
            }
            VariantKind::Tuple | VariantKind::Struct => {
                let len = self.de.read_len()?;
                for _ in 0..len {
                    if matches!(self.kind, VariantKind::Struct) {
                        self.de.read_str_raw()?;
                    }
                    de::IgnoredAny::deserialize(&mut *self.de)?;
                }
                Ok(())
            }
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        use serde::de::value::{MapAccessDeserializer, SeqAccessDeserializer, UnitDeserializer};
        match self.kind {
            VariantKind::Newtype => seed.deserialize(&mut *self.de),
            // `IgnoredAny` funnels every variant shape through here; map the
            // actual wire shape onto an equivalent deserializer.
            VariantKind::Unit => seed.deserialize(UnitDeserializer::new()),
            VariantKind::Tuple => {
                let len = self.de.read_len()?;
                seed.deserialize(SeqAccessDeserializer::new(SeqAccess {
                    de: self.de,
                    remaining: len,
                }))
            }
            VariantKind::Struct => {
                let len = self.de.read_len()?;
                seed.deserialize(MapAccessDeserializer::new(StructAccess {
                    de: self.de,
                    remaining: len,
                    value_pending: false,
                }))
            }
        }
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        match self.kind {
            VariantKind::Tuple => {
                let len = self.de.read_len()?;
                visitor.visit_seq(SeqAccess {
                    de: self.de,
                    remaining: len,
                })
            }
            _ => Err(Error::Message("expected tuple variant".into())),
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        match self.kind {
            VariantKind::Struct => {
                let len = self.de.read_len()?;
                visitor.visit_map(StructAccess {
                    de: self.de,
                    remaining: len,
                    value_pending: false,
                })
            }
            _ => Err(Error::Message("expected struct variant".into())),
        }
    }
}

macro_rules! forward_to_visit_next {
    ($($method:ident)*) => {
        $(fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            self.visit_next(visitor)
        })*
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = Error;

    fn is_human_readable(&self) -> bool {
        false
    }

    forward_to_visit_next! {
        deserialize_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
        deserialize_f32 deserialize_f64 deserialize_char
        deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf
        deserialize_unit deserialize_map
        deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.peek_tag()? {
            tag::NONE => {
                self.pos += 1;
                visitor.visit_none()
            }
            tag::SOME => {
                self.pos += 1;
                visitor.visit_some(&mut *self)
            }
            other => Err(Error::WrongTag {
                expected: "option",
                found: other,
                offset: self.pos,
            }),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        self.visit_next(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        // Transparent on the wire.
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.visit_next(visitor)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        self.visit_next(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.visit_next(visitor)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.visit_next(visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(value).expect("serialize");
        let back: T = from_bytes(&bytes).expect("deserialize");
        assert_eq!(&back, value);
        back
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Nested {
        name: String,
        values: Vec<f64>,
        blob: Vec<u8>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Empty,
        One(u32),
        Pair(i16, i16),
        Rec { left: String, right: Option<Box<Kind>> },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Everything {
        b: bool,
        i: i64,
        u: u64,
        small: u8,
        neg: i8,
        f: f64,
        c: char,
        s: String,
        opt_none: Option<u32>,
        opt_some: Option<String>,
        tup: (u8, String, bool),
        seq: Vec<Nested>,
        map: BTreeMap<String, i32>,
        kinds: Vec<Kind>,
        unit: (),
        big_u: u128,
        big_i: i128,
    }

    fn everything() -> Everything {
        let mut map = BTreeMap::new();
        map.insert("alpha".into(), -3);
        map.insert("beta".into(), 12);
        Everything {
            b: true,
            i: -1234567890123,
            u: 9876543210,
            small: 255,
            neg: -128,
            f: std::f64::consts::PI,
            c: '✓',
            s: "checkpoint/restart".into(),
            opt_none: None,
            opt_some: Some("inner".into()),
            tup: (7, "t".into(), false),
            seq: vec![
                Nested {
                    name: "rank0".into(),
                    values: vec![1.5, -0.0, f64::MAX],
                    blob: vec![0, 1, 2, 255],
                },
                Nested {
                    name: String::new(),
                    values: vec![],
                    blob: vec![],
                },
            ],
            map,
            kinds: vec![
                Kind::Empty,
                Kind::One(42),
                Kind::Pair(-1, 1),
                Kind::Rec {
                    left: "l".into(),
                    right: Some(Box::new(Kind::Empty)),
                },
            ],
            unit: (),
            big_u: u128::MAX - 7,
            big_i: i128::MIN + 7,
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i32);
        roundtrip(&3.5f32);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'x');
        roundtrip(&'\u{1F600}');
        roundtrip(&String::from("hello"));
        roundtrip(&String::new());
        roundtrip(&());
    }

    #[test]
    fn float_nan_roundtrips_as_nan() {
        let bytes = to_bytes(&f64::NAN).unwrap();
        let back: f64 = from_bytes(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn kitchen_sink_roundtrip() {
        roundtrip(&everything());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<String>::new());
        let mut hm = HashMap::new();
        hm.insert(3u16, "c".to_string());
        hm.insert(1, "a".to_string());
        roundtrip(&hm);
        roundtrip(&Some(Some(Some(5u8))));
        roundtrip(&[0u8; 32].to_vec());
    }

    #[test]
    fn nested_options_distinguish_none_levels() {
        roundtrip(&Option::<Option<u8>>::None);
        roundtrip(&Some(Option::<u8>::None));
    }

    #[test]
    fn newtype_struct_is_transparent() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Rank(u32);
        let bytes = to_bytes(&Rank(9)).unwrap();
        let plain = to_bytes(&9u32).unwrap();
        assert_eq!(bytes, plain);
        roundtrip(&Rank(9));
    }

    #[test]
    fn unknown_struct_fields_are_skipped() {
        // Simulates restarting a context file written by a newer build that
        // added a field: the old reader must skip it cleanly.
        #[derive(Serialize)]
        struct V2 {
            rank: u32,
            extra: Vec<String>,
            hostname: String,
        }
        #[derive(Debug, PartialEq, Deserialize)]
        struct V1 {
            rank: u32,
            hostname: String,
        }
        let bytes = to_bytes(&V2 {
            rank: 3,
            extra: vec!["a".into(), "b".into()],
            hostname: "n0".into(),
        })
        .unwrap();
        let v1: V1 = from_bytes(&bytes).unwrap();
        assert_eq!(
            v1,
            V1 {
                rank: 3,
                hostname: "n0".into()
            }
        );
    }

    #[test]
    fn missing_field_is_an_error() {
        #[derive(Serialize)]
        struct Small {
            rank: u32,
        }
        #[derive(Debug, Deserialize)]
        #[allow(dead_code)]
        struct Big {
            rank: u32,
            hostname: String,
        }
        let bytes = to_bytes(&Small { rank: 1 }).unwrap();
        assert!(from_bytes::<Big>(&bytes).is_err());
    }

    #[test]
    fn serde_default_fields_fill_in() {
        #[derive(Serialize)]
        struct Old {
            rank: u32,
        }
        #[derive(Debug, PartialEq, Deserialize)]
        struct New {
            rank: u32,
            #[serde(default)]
            retries: u32,
        }
        let bytes = to_bytes(&Old { rank: 1 }).unwrap();
        let new: New = from_bytes(&bytes).unwrap();
        assert_eq!(new, New { rank: 1, retries: 0 });
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&5u32).unwrap();
        bytes.push(0x00);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(Error::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&everything()).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes::<Everything>(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_huge_alloc() {
        // STR tag followed by an absurd length must error, not allocate.
        let mut bytes = vec![tag::STR];
        crate::varint::write_u64(&mut bytes, u64::MAX / 2);
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(Error::LengthOverrun { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            from_bytes::<u32>(&[0x7F]),
            Err(Error::BadTag { tag: 0x7F, .. })
        ));
    }

    #[test]
    fn wrong_shape_is_type_error_not_panic() {
        let bytes = to_bytes(&"a string").unwrap();
        assert!(from_bytes::<Vec<u32>>(&bytes).is_err());
        let bytes = to_bytes(&vec![1u8, 2]).unwrap();
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn ignored_any_skips_every_shape() {
        #[derive(Serialize)]
        struct Wrapper {
            before: u8,
            skipme: Everything,
            variants: Vec<Kind>,
            after: u8,
        }
        #[derive(Debug, PartialEq, Deserialize)]
        struct Sparse {
            before: u8,
            after: u8,
        }
        let bytes = to_bytes(&Wrapper {
            before: 1,
            skipme: everything(),
            variants: vec![
                Kind::Empty,
                Kind::One(1),
                Kind::Pair(2, 3),
                Kind::Rec {
                    left: "x".into(),
                    right: None,
                },
            ],
            after: 2,
        })
        .unwrap();
        let sparse: Sparse = from_bytes(&bytes).unwrap();
        assert_eq!(sparse, Sparse { before: 1, after: 2 });
    }

    #[test]
    fn bytes_with_serde_bytes_style_buffers() {
        // Vec<u8> serializes element-wise through serde by default; make sure
        // large byte payloads still roundtrip exactly.
        let blob: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        roundtrip(&blob);
    }

    #[test]
    fn deeply_nested_enum_roundtrip() {
        let mut k = Kind::Empty;
        for _ in 0..64 {
            k = Kind::Rec {
                left: "l".into(),
                right: Some(Box::new(k)),
            };
        }
        roundtrip(&k);
    }

    #[test]
    fn char_invalid_scalar_rejected() {
        let mut bytes = vec![tag::CHAR];
        crate::varint::write_u64(&mut bytes, 0xD800); // surrogate
        assert!(matches!(
            from_bytes::<char>(&bytes),
            Err(Error::InvalidChar { value: 0xD800 })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = vec![tag::STR];
        crate::varint::write_u64(&mut bytes, 2);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(Error::InvalidUtf8 { .. })
        ));
    }
}
