//! Reusable MPI application kernels.
//!
//! These are the workloads the examples, integration tests, and the
//! benchmark harness drive through the public API:
//!
//! * [`ring::RingApp`] — token ring (pure point-to-point, dependency
//!   chain; the quickstart workload).
//! * [`stencil::StencilApp`] — 1-D Jacobi heat diffusion with halo
//!   exchange: the classic long-running HPC kernel the paper's fault
//!   tolerance story targets, with a tunable per-rank state size.
//! * [`master_worker::MasterWorkerApp`] — bag-of-tasks with any-source
//!   receives (exercises wildcard matching across checkpoints).
//! * [`traffic::TrafficApp`] — seeded pseudo-random all-pairs traffic;
//!   the adversarial workload behind the consistency property tests.
//! * [`netpipe`] — the NetPIPE-style ping-pong harness reproducing the
//!   paper's §7 overhead measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod master_worker;
pub mod netpipe;
pub mod ring;
pub mod stencil;
pub mod traffic;
