//! Adversarial pseudo-random all-pairs traffic.
//!
//! Every step, each rank derives a permutation of the ranks from the
//! shared seed and the round number, sends a payload along the
//! permutation, and receives from its inverse — so the pattern is globally
//! matched, deterministic, and different every round. Payload sizes vary
//! pseudo-randomly too. This is the workload behind the consistency
//! property tests: whatever instant a checkpoint strikes, the restarted
//! run must produce the same digests.

use ompi::app::{MpiApp, StepOutcome};
use ompi::{Mpi, MpiError};
use serde::{Deserialize, Serialize};

/// SplitMix64: deterministic, serializable randomness derived from state.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher-Yates permutation of `0..n` from a seed.
fn permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut rng = seed;
    let mut p: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

/// Pseudo-random all-pairs traffic generator.
pub struct TrafficApp {
    /// Rounds to run.
    pub rounds: u64,
    /// Shared seed.
    pub seed: u64,
    /// Maximum payload length in bytes.
    pub max_len: usize,
}

impl Default for TrafficApp {
    fn default() -> Self {
        TrafficApp {
            rounds: 50,
            seed: 0xC0FFEE,
            max_len: 256,
        }
    }
}

/// Traffic state: progress plus an order-sensitive digest of everything
/// sent and received.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficState {
    /// Completed rounds.
    pub round: u64,
    /// Digest over received bytes.
    pub recv_digest: u64,
    /// Digest over sent bytes.
    pub sent_digest: u64,
}

fn digest(acc: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(acc, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(*b)))
}

const TAG: u32 = 41;

impl MpiApp for TrafficApp {
    type State = TrafficState;

    fn name(&self) -> &str {
        "traffic"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<TrafficState, MpiError> {
        Ok(TrafficState {
            round: 0,
            recv_digest: 0,
            sent_digest: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut TrafficState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        if n > 1 {
            let round_seed = self.seed ^ state.round.wrapping_mul(0x9E37_79B9);
            let perm = permutation(n, round_seed);
            let dst = perm[me as usize];
            let src = perm
                .iter()
                .position(|d| *d == me)
                .expect("permutation is a bijection") as u32;

            // Deterministic payload: function of (seed, round, me).
            let mut rng = round_seed ^ u64::from(me).wrapping_mul(0x517C_C1B7);
            let len = (splitmix(&mut rng) as usize) % (self.max_len + 1);
            let payload: Vec<u8> = (0..len).map(|_| splitmix(&mut rng) as u8).collect();

            // Post the receive first (any round may self-send via the
            // permutation's fixed points, which must still match).
            let req = mpi.irecv(&comm, Some(src), Some(TAG))?;
            mpi.send(&comm, dst, TAG, &payload)?;
            state.sent_digest = digest(state.sent_digest, &payload);
            let (received, status): (Vec<u8>, _) = mpi.wait_recv(req)?;
            debug_assert_eq!(status.source, src);
            state.recv_digest = digest(state.recv_digest, &received);
        }
        state.round += 1;
        Ok(if state.round >= self.rounds {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

/// Invariant over a completed job: the multiset of sent payloads equals
/// the multiset of received payloads. With order-sensitive digests we can
/// still check the aggregate: the sum over ranks of sent digests is a
/// deterministic function of (n, seed, rounds), so two runs (fault-free
/// vs checkpoint/restart) must agree rank by rank on both digests.
pub fn digests_agree(a: &[TrafficState], b: &[TrafficState]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.round == y.round
                && x.recv_digest == y.recv_digest
                && x.sent_digest == y.sent_digest
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijective() {
        for seed in 0..20 {
            let p = permutation(9, seed);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn permutation_varies_with_seed() {
        assert_ne!(permutation(16, 1), permutation(16, 2));
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix(&mut a), splitmix(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest(digest(0, b"ab"), b"cd");
        let b = digest(digest(0, b"cd"), b"ab");
        assert_ne!(a, b);
    }
}
