//! 1-D Jacobi heat diffusion with halo exchange.
//!
//! The canonical long-running HPC kernel: each rank owns a slab of a 1-D
//! rod, exchanges boundary cells with its neighbours every iteration, and
//! relaxes toward the steady state. The per-rank slab size is tunable,
//! which makes this the workload for snapshot-size scaling experiments
//! (DESIGN.md A2): the slab *is* the checkpointed state.

use ompi::app::{MpiApp, StepOutcome};
use ompi::{Mpi, MpiError};
use serde::{Deserialize, Serialize};

/// Jacobi relaxation on a 1-D rod split across ranks.
pub struct StencilApp {
    /// Interior cells per rank.
    pub cells_per_rank: usize,
    /// Iterations to run.
    pub iters: u64,
    /// Fixed temperature at the left end of the rod.
    pub left_boundary: f64,
    /// Fixed temperature at the right end of the rod.
    pub right_boundary: f64,
}

impl Default for StencilApp {
    fn default() -> Self {
        StencilApp {
            cells_per_rank: 64,
            iters: 100,
            left_boundary: 100.0,
            right_boundary: 0.0,
        }
    }
}

/// Stencil state: the local slab plus progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilState {
    /// Completed iterations.
    pub iter: u64,
    /// Local interior cells.
    pub cells: Vec<f64>,
    /// Residual from the last iteration (global max change).
    pub residual: f64,
}

impl MpiApp for StencilApp {
    type State = StencilState;

    fn name(&self) -> &str {
        "stencil"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<StencilState, MpiError> {
        Ok(StencilState {
            iter: 0,
            cells: vec![0.0; self.cells_per_rank],
            residual: f64::INFINITY,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut StencilState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        const TAG_LEFT: u32 = 21; // travelling toward lower ranks
        const TAG_RIGHT: u32 = 22; // travelling toward higher ranks

        // Halo exchange: send edges, receive neighbours' edges. Non-blocking
        // receives avoid ordering deadlocks at the ends of the rod.
        
        
        let first = *state.cells.first().expect("non-empty slab");
        let last = *state.cells.last().expect("non-empty slab");

        let recv_left = if me > 0 {
            Some(mpi.irecv(&comm, Some(me - 1), Some(TAG_RIGHT))?)
        } else {
            None
        };
        let recv_right = if me + 1 < n {
            Some(mpi.irecv(&comm, Some(me + 1), Some(TAG_LEFT))?)
        } else {
            None
        };
        if me > 0 {
            mpi.send(&comm, me - 1, TAG_LEFT, &first)?;
        }
        if me + 1 < n {
            mpi.send(&comm, me + 1, TAG_RIGHT, &last)?;
        }
        let left_halo: f64 = match recv_left {
            Some(req) => mpi.wait_recv::<f64>(req)?.0,
            None => self.left_boundary,
        };
        let right_halo: f64 = match recv_right {
            Some(req) => mpi.wait_recv::<f64>(req)?.0,
            None => self.right_boundary,
        };

        // Jacobi update.
        let len = state.cells.len();
        let old = state.cells.clone();
        let mut local_residual: f64 = 0.0;
        for i in 0..len {
            let left = if i == 0 { left_halo } else { old[i - 1] };
            let right = if i + 1 == len { right_halo } else { old[i + 1] };
            let updated = 0.5 * (left + right);
            local_residual = local_residual.max((updated - old[i]).abs());
            state.cells[i] = updated;
        }

        // Global residual (allreduce max) — collective traffic every step.
        state.residual = mpi.allreduce(&comm, local_residual, f64::max)?;
        state.iter += 1;
        Ok(if state.iter >= self.iters {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

/// Single-process reference: the same physics with no MPI, for any rank
/// count (used to validate distributed runs).
pub fn reference_rod(
    nprocs: usize,
    cells_per_rank: usize,
    iters: u64,
    left_boundary: f64,
    right_boundary: f64,
) -> Vec<f64> {
    let total = nprocs * cells_per_rank;
    let mut rod = vec![0.0f64; total];
    for _ in 0..iters {
        let old = rod.clone();
        for i in 0..total {
            let left = if i == 0 { left_boundary } else { old[i - 1] };
            let right = if i + 1 == total {
                right_boundary
            } else {
                old[i + 1]
            };
            rod[i] = 0.5 * (left + right);
        }
    }
    rod
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_heats_up_from_the_left() {
        let rod = reference_rod(2, 8, 200, 100.0, 0.0);
        assert!(rod[0] > rod[15]);
        assert!(rod[0] > 50.0);
        assert!(rod[15] < 50.0);
        // Monotone non-increasing profile at convergence-ish.
        for w in rod.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn zero_iters_leaves_rod_cold() {
        let rod = reference_rod(1, 4, 0, 100.0, 0.0);
        assert_eq!(rod, vec![0.0; 4]);
    }
}
