//! Bag-of-tasks master/worker workload.
//!
//! Rank 0 hands out work items; workers request work with any-source
//! receives on the master side — the wildcard-matching pattern that is
//! hardest for checkpoint consistency (a drained in-flight request must
//! match identically after restart).
//!
//! To keep steps collective (every rank finishes a step together), the
//! bag is processed in fixed-size waves: one wave per step, with a
//! closing barrier.

use ompi::app::{MpiApp, StepOutcome};
use ompi::{Mpi, MpiError};
use serde::{Deserialize, Serialize};

/// Work item: collatz-style iteration count (cheap, deterministic,
/// uneven across items — classic bag-of-tasks shape).
fn work(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(2_654_435_761).wrapping_add(1) | 1;
    let mut steps = 0u64;
    while x != 1 && steps < 10_000 {
        x = if x.is_multiple_of(2) { x / 2 } else { 3 * x + 1 };
        steps += 1;
    }
    steps
}

/// Bag-of-tasks with a master on rank 0.
pub struct MasterWorkerApp {
    /// Total number of tasks in the bag.
    pub tasks: u64,
    /// Tasks dispatched per step (wave).
    pub wave: u64,
}

/// Master/worker state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MwState {
    /// Next task id to dispatch.
    pub next_task: u64,
    /// Results accumulated (master: all; workers: their own contribution).
    pub total: u64,
    /// Tasks this rank completed (workers) or collected (master).
    pub completed: u64,
}

const TAG_TASK: u32 = 31;
const TAG_RESULT: u32 = 32;

impl MpiApp for MasterWorkerApp {
    type State = MwState;

    fn name(&self) -> &str {
        "master-worker"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<MwState, MpiError> {
        Ok(MwState {
            next_task: 0,
            total: 0,
            completed: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut MwState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        if n < 2 {
            // Degenerate single-process mode: master does the work itself.
            let end = (state.next_task + self.wave).min(self.tasks);
            for t in state.next_task..end {
                state.total = state.total.wrapping_add(work(t));
                state.completed += 1;
            }
            state.next_task = end;
            return Ok(if state.next_task >= self.tasks {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            });
        }

        let workers = n - 1;
        let wave_start = state.next_task;
        let wave_end = (wave_start + self.wave).min(self.tasks);

        if me == 0 {
            // Dispatch this wave round-robin, then collect results from
            // anyone, in completion order.
            let mut outstanding = 0u64;
            for t in wave_start..wave_end {
                let worker = 1 + ((t % u64::from(workers)) as u32);
                mpi.send(&comm, worker, TAG_TASK, &t)?;
                outstanding += 1;
            }
            while outstanding > 0 {
                let (result, _status): (u64, _) = mpi.recv(&comm, None, Some(TAG_RESULT))?;
                state.total = state.total.wrapping_add(result);
                state.completed += 1;
                outstanding -= 1;
            }
        } else {
            // Receive my share of the wave, compute, reply.
            let mine = (wave_start..wave_end)
                .filter(|t| 1 + ((t % u64::from(workers)) as u32) == me)
                .count();
            for _ in 0..mine {
                let (task, _): (u64, _) = mpi.recv(&comm, Some(0), Some(TAG_TASK))?;
                let result = work(task);
                state.total = state.total.wrapping_add(result);
                state.completed += 1;
                mpi.send(&comm, 0, TAG_RESULT, &result)?;
            }
        }
        state.next_task = wave_end;
        mpi.barrier(&comm)?;
        Ok(if state.next_task >= self.tasks {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

/// Fault-free reference: the master's expected total.
pub fn reference_total(tasks: u64) -> u64 {
    (0..tasks).fold(0u64, |acc, t| acc.wrapping_add(work(t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_deterministic_and_uneven() {
        assert_eq!(work(7), work(7));
        let a = work(1);
        let b = work(2);
        let c = work(3);
        assert!(a != b || b != c, "work sizes should vary");
    }

    #[test]
    fn reference_total_accumulates() {
        assert_eq!(reference_total(0), 0);
        assert_eq!(reference_total(3), work(0).wrapping_add(work(1)).wrapping_add(work(2)));
    }
}
