//! Token ring workload.

use ompi::app::{MpiApp, StepOutcome};
use ompi::{Mpi, MpiError};
use serde::{Deserialize, Serialize};

/// Passes an accumulating token around the ring once per step.
pub struct RingApp {
    /// Number of times the token travels the full ring.
    pub rounds: u64,
}

/// Ring state: the round counter and an order-sensitive checksum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingState {
    /// Completed rounds.
    pub round: u64,
    /// Order-sensitive accumulator over every token this rank handled.
    pub checksum: u64,
}

impl MpiApp for RingApp {
    type State = RingState;

    fn name(&self) -> &str {
        "ring"
    }

    fn init_state(&self, _mpi: &Mpi) -> Result<RingState, MpiError> {
        Ok(RingState {
            round: 0,
            checksum: 0,
        })
    }

    fn step(&self, mpi: &Mpi, state: &mut RingState) -> Result<StepOutcome, MpiError> {
        let comm = mpi.world().clone();
        let me = comm.rank();
        let n = comm.size();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        const TAG: u32 = 11;

        let handled = if n == 1 {
            state.round
        } else if me == 0 {
            mpi.send(&comm, next, TAG, &state.round)?;
            let (token, _): (u64, _) = mpi.recv(&comm, Some(prev), Some(TAG))?;
            token
        } else {
            let (token, _): (u64, _) = mpi.recv(&comm, Some(prev), Some(TAG))?;
            let forwarded = token.wrapping_mul(31).wrapping_add(u64::from(me));
            mpi.send(&comm, next, TAG, &forwarded)?;
            forwarded
        };
        state.checksum = state
            .checksum
            .wrapping_mul(1_000_003)
            .wrapping_add(handled);
        state.round += 1;
        Ok(if state.round >= self.rounds {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }
}

/// Fault-free reference checksums, computed without any MPI machinery.
pub fn reference_checksums(nprocs: u64, rounds: u64) -> Vec<u64> {
    let mut sums = vec![0u64; nprocs as usize];
    for round in 0..rounds {
        let mut token = round;
        // Rank 0 handles the value that comes back around.
        for r in 1..nprocs {
            token = token.wrapping_mul(31).wrapping_add(r);
            sums[r as usize] = sums[r as usize].wrapping_mul(1_000_003).wrapping_add(token);
        }
        let zero_handles = if nprocs == 1 { round } else { token };
        sums[0] = sums[0].wrapping_mul(1_000_003).wrapping_add(zero_handles);
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_manual_small_case() {
        // 2 ranks, 1 round: rank 1 forwards 0*31+1 = 1; rank 0 handles 1.
        let sums = reference_checksums(2, 1);
        assert_eq!(sums, vec![1, 1]);
    }

    #[test]
    fn single_rank_reference() {
        let sums = reference_checksums(1, 3);
        // Rounds 0,1,2 chained through the accumulator.
        let expected = ((0u64
            .wrapping_mul(1_000_003)
            .wrapping_add(0))
        .wrapping_mul(1_000_003)
        .wrapping_add(1))
        .wrapping_mul(1_000_003)
        .wrapping_add(2);
        assert_eq!(sums, vec![expected]);
    }
}
