//! NetPIPE-style ping-pong harness (paper §7).
//!
//! The paper's evaluation measures the latency and bandwidth overhead of
//! the checkpoint/restart infrastructure: NetPIPE over Open MPI with the
//! interposition layers active (passthrough components) versus the plain
//! build. This module reproduces the measurement: two ranks exchange
//! messages of increasing size over the PML, with the CRCP wrapper either
//! absent (baseline) or installed (the `none` passthrough or a real
//! protocol), and reports wall-clock half-round-trip latency and
//! bandwidth.

use std::sync::Arc;
use std::time::Instant;

use cr_core::Tracer;
use netsim::{Fabric, LinkSpec, NodeId, Topology};
use ompi::crcp::{CoordCrcp, CrcpComponent, LoggerCrcp, NoneCrcp};
use ompi::pml::PmlShared;
use ompi::MpiError;
use opal::SafePointGate;

/// Which CRCP configuration to interpose on the PML.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// No interposition at all: the infrastructure-disabled baseline.
    Disabled,
    /// Interposition installed with the passthrough component (the
    /// paper's measured configuration).
    Passthrough,
    /// The coordinated bookmark protocol (failure-free path).
    Coord,
    /// Pessimistic sender-based message logging (pays a per-message copy).
    Logger,
}

impl FtMode {
    /// All modes, for sweep harnesses.
    pub const ALL: [FtMode; 4] = [
        FtMode::Disabled,
        FtMode::Passthrough,
        FtMode::Coord,
        FtMode::Logger,
    ];

    /// Display label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            FtMode::Disabled => "disabled",
            FtMode::Passthrough => "passthrough",
            FtMode::Coord => "coord",
            FtMode::Logger => "logger",
        }
    }

    fn component(&self, tracer: &Tracer) -> Option<Arc<dyn CrcpComponent>> {
        match self {
            FtMode::Disabled => None,
            FtMode::Passthrough => Some(Arc::new(NoneCrcp)),
            FtMode::Coord => Some(Arc::new(CoordCrcp::new(tracer.clone()))),
            FtMode::Logger => Some(Arc::new(LoggerCrcp::new(tracer.clone()))),
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetpipeSample {
    /// Message size in bytes.
    pub size: usize,
    /// Round trips measured.
    pub reps: u32,
    /// Mean one-way latency in nanoseconds (half round trip).
    pub latency_ns: f64,
    /// Throughput in MB/s implied by the one-way latency.
    pub bandwidth_mbps: f64,
}

/// Build the standard NetPIPE-ish size ladder: 1 B .. `max` doubling.
pub fn size_ladder(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut s = 1usize;
    while s <= max {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// A connected ping-pong pair over a fresh two-node fabric.
pub struct PingPongPair {
    /// Rank 0's PML.
    pub a: Arc<PmlShared>,
    /// Rank 1's PML.
    pub b: Arc<PmlShared>,
}

impl PingPongPair {
    /// Build the pair with the given fault-tolerance mode.
    pub fn new(mode: FtMode) -> Self {
        let tracer = Tracer::new();
        let fabric = Fabric::new(Topology::uniform(2, LinkSpec::gigabit_ethernet()));
        let ep_a = fabric.register(NodeId(0));
        let ep_b = fabric.register(NodeId(1));
        let ids = vec![ep_a.id(), ep_b.id()];
        let a = PmlShared::new(
            0,
            2,
            ep_a,
            ids.clone(),
            Arc::new(SafePointGate::new()),
            tracer.clone(),
        );
        let b = PmlShared::new(
            1,
            2,
            ep_b,
            ids,
            Arc::new(SafePointGate::new()),
            tracer.clone(),
        );
        a.set_crcp(mode.component(&tracer));
        b.set_crcp(mode.component(&tracer));
        PingPongPair { a, b }
    }

    /// Measure one message size: `reps` round trips, returning the mean
    /// one-way latency. The echo side runs on a second thread, exactly
    /// like NetPIPE's two processes.
    pub fn measure(&self, size: usize, reps: u32) -> Result<NetpipeSample, MpiError> {
        let payload = vec![0xA5u8; size];
        let b = Arc::clone(&self.b);
        let echo = std::thread::spawn(move || -> Result<(), MpiError> {
            for _ in 0..reps {
                let frame = b.recv(0, Some(0), Some(1))?;
                b.send(0, 0, 2, &frame.payload)?;
            }
            Ok(())
        });

        let start = Instant::now();
        for _ in 0..reps {
            self.a.send(0, 1, 1, &payload)?;
            let back = self.a.recv(0, Some(1), Some(2))?;
            debug_assert_eq!(back.payload.len(), size);
        }
        let elapsed = start.elapsed();
        echo.join().expect("echo thread")?;

        // Reset step logs so long sweeps do not accumulate unbounded
        // replay records (we never checkpoint inside the sweep), and prune
        // the message-logging component's retained payloads as a
        // checkpoint's garbage collection would (steady-state behaviour).
        self.a.begin_step();
        self.b.begin_step();
        self.a.with_state(|st| st.sender_log.clear());
        self.b.with_state(|st| st.sender_log.clear());

        let latency_ns = elapsed.as_nanos() as f64 / f64::from(reps) / 2.0;
        let bandwidth_mbps = if latency_ns > 0.0 {
            (size as f64 / (latency_ns / 1e9)) / (1024.0 * 1024.0)
        } else {
            0.0
        };
        Ok(NetpipeSample {
            size,
            reps,
            latency_ns,
            bandwidth_mbps,
        })
    }
}

/// Run a full sweep: one sample per size.
pub fn sweep(mode: FtMode, sizes: &[usize], reps: u32) -> Result<Vec<NetpipeSample>, MpiError> {
    let pair = PingPongPair::new(mode);
    // Warm up allocators and code paths.
    pair.measure(8, reps.min(64))?;
    sizes.iter().map(|s| pair.measure(*s, reps)).collect()
}

/// Measure every mode at every size, interleaved, discarding warm-up
/// passes: per size, all modes are sampled back to back so allocator and
/// scheduler warm-up costs do not bias whichever mode runs first (the
/// artifact a naive mode-by-mode sweep produces). Returns the final
/// pass's samples per mode, in [`FtMode::ALL`] order.
pub fn run_matrix(
    sizes: &[usize],
    reps: u32,
    passes: u32,
) -> Result<Vec<(FtMode, Vec<NetpipeSample>)>, MpiError> {
    assert!(passes >= 1);
    let pairs: Vec<(FtMode, PingPongPair)> = FtMode::ALL
        .into_iter()
        .map(|m| (m, PingPongPair::new(m)))
        .collect();
    // Touch the largest payload everywhere once (page faults, growth).
    let max = sizes.iter().copied().max().unwrap_or(1);
    for (_, pair) in &pairs {
        pair.measure(max, 4)?;
    }
    let mut last: Vec<(FtMode, Vec<NetpipeSample>)> =
        FtMode::ALL.into_iter().map(|m| (m, Vec::new())).collect();
    for pass in 0..passes {
        for slot in &mut last {
            slot.1.clear();
        }
        let _ = pass;
        for &size in sizes {
            for (i, (_, pair)) in pairs.iter().enumerate() {
                last[i].1.push(pair.measure(size, reps)?);
            }
        }
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles() {
        assert_eq!(size_ladder(16), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn pingpong_measures_every_mode() {
        for mode in FtMode::ALL {
            let pair = PingPongPair::new(mode);
            let sample = pair.measure(64, 50).unwrap();
            assert!(sample.latency_ns > 0.0, "{mode:?}");
            assert!(sample.bandwidth_mbps > 0.0, "{mode:?}");
        }
    }

    #[test]
    fn larger_messages_have_higher_bandwidth() {
        let pair = PingPongPair::new(FtMode::Disabled);
        let small = pair.measure(16, 200).unwrap();
        let large = pair.measure(65536, 200).unwrap();
        assert!(large.bandwidth_mbps > small.bandwidth_mbps);
    }

    #[test]
    fn logger_retains_payloads_others_do_not() {
        // Drive sends directly (measure() garbage-collects the log after
        // each sample, mimicking checkpoint-time pruning).
        let pair = PingPongPair::new(FtMode::Logger);
        pair.a.send(0, 1, 1, &[0u8; 128]).unwrap();
        pair.a.send(0, 1, 1, &[0u8; 128]).unwrap();
        assert_eq!(pair.a.with_state(|st| st.sender_log.len()), 2);

        let pair = PingPongPair::new(FtMode::Passthrough);
        pair.a.send(0, 1, 1, &[0u8; 128]).unwrap();
        assert!(pair.a.with_state(|st| st.sender_log.is_empty()));

        // And measure() leaves no residue in either mode.
        let pair = PingPongPair::new(FtMode::Logger);
        pair.measure(128, 10).unwrap();
        assert!(pair.a.with_state(|st| st.sender_log.is_empty()));
    }
}
