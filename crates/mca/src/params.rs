//! MCA runtime parameters.
//!
//! A thread-safe string key/value store with typed accessors and source
//! provenance. Mirrors Open MPI's `--mca <key> <value>` mechanism: the same
//! store configures component selection (`--mca snapc full`) and component
//! tunables (`--mca crs_blcr_sim_fail_every 3`).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use parking_lot::RwLock;

/// Where a parameter value came from. Higher sources override lower ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParamSource {
    /// Built-in default registered by a framework/component.
    Default,
    /// Read from an `mca-params.conf`-style file.
    File,
    /// Taken from the environment (`OMPI_MCA_<key>`).
    Environment,
    /// Given on the command line (`--mca key value`).
    CommandLine,
    /// Set programmatically through the API (strongest).
    Api,
}

impl fmt::Display for ParamSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamSource::Default => "default",
            ParamSource::File => "file",
            ParamSource::Environment => "environment",
            ParamSource::CommandLine => "command line",
            ParamSource::Api => "api",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: String,
    source: ParamSource,
}

/// Thread-safe MCA parameter store.
///
/// Cloning an `McaParams` snapshot is cheap relative to job launch and is
/// used to give each simulated process an immutable view of its launch
/// parameters (the view is what gets recorded in snapshot metadata so a
/// restart can reconstruct the original configuration).
///
/// # Examples
///
/// ```
/// use mca::McaParams;
///
/// let params = McaParams::new();
/// params.set("crs", "blcr_sim");
/// params.set("crs_blcr_sim_fail_every", "3");
/// assert_eq!(params.get("crs").as_deref(), Some("blcr_sim"));
/// assert_eq!(params.get_parsed_or("crs_blcr_sim_fail_every", 0u64).unwrap(), 3);
/// // Command line style:
/// let argv: Vec<String> = ["--mca", "snapc", "tree", "app"].iter().map(|s| s.to_string()).collect();
/// let rest = params.consume_cli_args(&argv).unwrap();
/// assert_eq!(rest, vec!["app"]);
/// assert_eq!(params.get("snapc").as_deref(), Some("tree"));
/// ```
#[derive(Debug, Default)]
pub struct McaParams {
    entries: RwLock<BTreeMap<String, Entry>>,
}

impl Clone for McaParams {
    fn clone(&self) -> Self {
        McaParams {
            entries: RwLock::new(self.entries.read().clone()),
        }
    }
}

impl McaParams {
    /// Empty parameter store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` from the given `source`. A weaker source never overrides a
    /// stronger one (command line beats file, api beats everything).
    pub fn set_from(&self, key: &str, value: impl Into<String>, source: ParamSource) {
        let mut map = self.entries.write();
        match map.get(key) {
            Some(existing) if existing.source > source => {}
            _ => {
                map.insert(
                    key.to_string(),
                    Entry {
                        value: value.into(),
                        source,
                    },
                );
            }
        }
    }

    /// Set `key` programmatically (strongest source).
    pub fn set(&self, key: &str, value: impl Into<String>) {
        self.set_from(key, value, ParamSource::Api);
    }

    /// Register a built-in default: only takes effect if nothing stronger
    /// has set the key.
    pub fn default_value(&self, key: &str, value: impl Into<String>) {
        self.set_from(key, value, ParamSource::Default);
    }

    /// Raw string value of `key`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.entries.read().get(key).map(|e| e.value.clone())
    }

    /// Value and provenance of `key`.
    pub fn get_with_source(&self, key: &str) -> Option<(String, ParamSource)> {
        self.entries
            .read()
            .get(key)
            .map(|e| (e.value.clone(), e.source))
    }

    /// Parse `key` as `T`, falling back to `default` when absent.
    ///
    /// A present-but-unparsable value returns `Err` rather than silently
    /// using the default: a typo'd `--mca` tunable must not change behaviour
    /// without telling the user.
    pub fn get_parsed_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, ParamParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ParamParseError {
                key: key.to_string(),
                raw,
                wanted: std::any::type_name::<T>(),
            }),
        }
    }

    /// Boolean accessor accepting `1/0/true/false/yes/no` (Open MPI style).
    pub fn get_bool_or(&self, key: &str, default: bool) -> Result<bool, ParamParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => match raw.to_ascii_lowercase().as_str() {
                "1" | "true" | "yes" | "on" => Ok(true),
                "0" | "false" | "no" | "off" => Ok(false),
                _ => Err(ParamParseError {
                    key: key.to_string(),
                    raw,
                    wanted: "bool",
                }),
            },
        }
    }

    /// Apply pairs parsed from a command line (`--mca key value` sequences).
    pub fn apply_cli_pairs<'a>(&self, pairs: impl IntoIterator<Item = (&'a str, &'a str)>) {
        for (k, v) in pairs {
            self.set_from(k, v, ParamSource::CommandLine);
        }
    }

    /// Parse `--mca key value` occurrences out of an argument vector,
    /// returning the arguments that were not consumed.
    pub fn consume_cli_args(&self, args: &[String]) -> Result<Vec<String>, ParamParseError> {
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--mca" || arg == "-mca" {
                let key = it.next().ok_or_else(|| ParamParseError {
                    key: "--mca".into(),
                    raw: "<missing key>".into(),
                    wanted: "key value pair",
                })?;
                let value = it.next().ok_or_else(|| ParamParseError {
                    key: key.clone(),
                    raw: "<missing value>".into(),
                    wanted: "key value pair",
                })?;
                self.set_from(key, value.clone(), ParamSource::CommandLine);
            } else {
                rest.push(arg.clone());
            }
        }
        Ok(rest)
    }

    /// Load `key = value` lines (comments with `#`) as [`ParamSource::File`].
    pub fn load_conf(&self, text: &str) -> Result<(), ParamParseError> {
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line.split_once('=').ok_or_else(|| ParamParseError {
                key: line.to_string(),
                raw: line.to_string(),
                wanted: "key = value",
            })?;
            self.set_from(k.trim(), v.trim(), ParamSource::File);
        }
        Ok(())
    }

    /// Snapshot of every key/value pair, for embedding in snapshot metadata.
    pub fn dump(&self) -> Vec<(String, String)> {
        self.entries
            .read()
            .iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect()
    }

    /// Rebuild a store from a [`McaParams::dump`] (used at restart to
    /// recreate the original launch configuration from snapshot metadata).
    pub fn from_dump<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let params = McaParams::new();
        for (k, v) in pairs {
            params.set_from(k, v, ParamSource::File);
        }
        params
    }

    /// Number of parameters set.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True when no parameters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

/// A parameter existed but could not be parsed as the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamParseError {
    /// Parameter key.
    pub key: String,
    /// Raw value found.
    pub raw: String,
    /// Human-readable description of the wanted type.
    pub wanted: &'static str,
}

impl fmt::Display for ParamParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MCA parameter {:?} has value {:?} which is not a valid {}",
            self.key, self.raw, self.wanted
        )
    }
}

impl std::error::Error for ParamParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let p = McaParams::new();
        p.set("snapc", "full");
        assert_eq!(p.get("snapc").as_deref(), Some("full"));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn source_precedence() {
        let p = McaParams::new();
        p.set_from("crs", "self", ParamSource::CommandLine);
        p.set_from("crs", "blcr_sim", ParamSource::File);
        assert_eq!(p.get("crs").as_deref(), Some("self"), "file must not beat cli");
        p.set_from("crs", "none", ParamSource::Api);
        assert_eq!(p.get("crs").as_deref(), Some("none"), "api beats cli");
        assert_eq!(
            p.get_with_source("crs"),
            Some(("none".into(), ParamSource::Api))
        );
    }

    #[test]
    fn default_does_not_override() {
        let p = McaParams::new();
        p.set("crcp", "coord");
        p.default_value("crcp", "none");
        assert_eq!(p.get("crcp").as_deref(), Some("coord"));
        p.default_value("filem", "rsh_sim");
        assert_eq!(p.get("filem").as_deref(), Some("rsh_sim"));
    }

    #[test]
    fn equal_source_last_write_wins() {
        let p = McaParams::new();
        p.set("k", "a");
        p.set("k", "b");
        assert_eq!(p.get("k").as_deref(), Some("b"));
    }

    #[test]
    fn typed_accessors() {
        let p = McaParams::new();
        p.set("interval", "7");
        p.set("enable", "yes");
        p.set("ratio", "0.25");
        assert_eq!(p.get_parsed_or("interval", 0u64).unwrap(), 7);
        assert_eq!(p.get_parsed_or("absent", 42u64).unwrap(), 42);
        assert!(p.get_bool_or("enable", false).unwrap());
        assert!(!p.get_bool_or("absent", false).unwrap());
        assert_eq!(p.get_parsed_or("ratio", 0.0f64).unwrap(), 0.25);
    }

    #[test]
    fn unparsable_value_is_error_not_default() {
        let p = McaParams::new();
        p.set("interval", "soon");
        let err = p.get_parsed_or("interval", 0u64).unwrap_err();
        assert!(err.to_string().contains("interval"));
        assert!(err.to_string().contains("soon"));
        p.set("enable", "maybe");
        assert!(p.get_bool_or("enable", true).is_err());
    }

    #[test]
    fn cli_args_consumed() {
        let p = McaParams::new();
        let args: Vec<String> = ["prog", "--mca", "crs", "self", "-np", "4", "--mca", "snapc", "full"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rest = p.consume_cli_args(&args).unwrap();
        assert_eq!(rest, vec!["prog", "-np", "4"]);
        assert_eq!(p.get("crs").as_deref(), Some("self"));
        assert_eq!(p.get("snapc").as_deref(), Some("full"));
    }

    #[test]
    fn cli_missing_value_is_error() {
        let p = McaParams::new();
        let args: Vec<String> = ["--mca", "crs"].iter().map(|s| s.to_string()).collect();
        assert!(p.consume_cli_args(&args).is_err());
        let args: Vec<String> = ["--mca"].iter().map(|s| s.to_string()).collect();
        assert!(p.consume_cli_args(&args).is_err());
    }

    #[test]
    fn conf_loading() {
        let p = McaParams::new();
        p.load_conf("# comment\ncrs = blcr_sim\n\nsnapc=full\n").unwrap();
        assert_eq!(p.get("crs").as_deref(), Some("blcr_sim"));
        assert_eq!(p.get("snapc").as_deref(), Some("full"));
        assert!(p.load_conf("not a kv line\n").is_err());
    }

    #[test]
    fn dump_and_rebuild() {
        let p = McaParams::new();
        p.set("a", "1");
        p.set("b", "2");
        let dump = p.dump();
        let rebuilt = McaParams::from_dump(dump.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        assert_eq!(rebuilt.get("a").as_deref(), Some("1"));
        assert_eq!(rebuilt.get("b").as_deref(), Some("2"));
        assert_eq!(rebuilt.len(), 2);
        assert!(!rebuilt.is_empty());
    }

    #[test]
    fn clone_is_snapshot() {
        let p = McaParams::new();
        p.set("k", "v1");
        let snap = p.clone();
        p.set("k", "v2");
        assert_eq!(snap.get("k").as_deref(), Some("v1"));
        assert_eq!(p.get("k").as_deref(), Some("v2"));
    }
}
