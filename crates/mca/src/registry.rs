//! The MCA parameter registry: every key any component reads, in one table.
//!
//! Open MPI registers each parameter with `mca_base_param_reg_*` so that
//! `ompi_info` can enumerate the full configuration surface and a typo'd
//! `--mca` key is distinguishable from a real one. This module is the
//! reproduction's registration site: [`KNOWN_PARAMS`] describes every key,
//! [`register_defaults`] seeds a parameter store with the built-in default
//! values (at [`crate::ParamSource::Default`] strength, so any file /
//! environment / command-line / API setting still wins).
//!
//! The `cr-lint` static analysis enforces the discipline from the other
//! side: any string key passed to a typed accessor in non-test code must
//! appear in this table (rule `mca-keys`). When adding a parameter to a
//! component, add its row here in the same change.

use crate::params::McaParams;

/// Descriptor of one registered MCA parameter.
#[derive(Debug, Clone, Copy)]
pub struct ParamDef {
    /// Parameter key as given to `--mca <key> <value>`.
    pub key: &'static str,
    /// Built-in default. `None` for keys that are only meaningful when the
    /// user (or the runtime itself) sets them explicitly — selection
    /// directives default to empty, which means "highest priority wins",
    /// and informational keys like `np` are written by the launcher.
    pub default: Option<&'static str>,
    /// One-line description shown by `ompi-info`.
    pub help: &'static str,
}

/// Every MCA parameter the workspace reads or writes.
///
/// Defaults here MUST match the in-code fallback of the reading site:
/// registration only makes the default visible, it must not change
/// behaviour.
pub const KNOWN_PARAMS: &[ParamDef] = &[
    // Framework selection directives (empty = priority-based selection;
    // comma list = preference order; leading `^` = exclusion list).
    ParamDef {
        key: "crs",
        default: None,
        help: "local checkpoint/restart system selection",
    },
    ParamDef {
        key: "crcp",
        default: None,
        help: "checkpoint/restart coordination protocol selection",
    },
    ParamDef {
        key: "snapc",
        default: None,
        help: "snapshot coordinator selection",
    },
    ParamDef {
        key: "filem",
        default: None,
        help: "file management component selection",
    },
    ParamDef {
        key: "plm",
        default: None,
        help: "process launch component selection",
    },
    // OMPI layer.
    ParamDef {
        key: "ft_cr_enabled",
        default: Some("true"),
        help: "interpose the C/R wrapper on the PML (paper's overhead baseline: false)",
    },
    ParamDef {
        key: "crcp_msg_log_enabled",
        default: Some("false"),
        help: "sender-side message log between commits (required for partial restart replay)",
    },
    ParamDef {
        key: "crcp_msg_log_cap_kb",
        default: Some("256"),
        help: "sender-side message log: per-rank payload cap in KiB (overflow disables partial restart)",
    },
    ParamDef {
        key: "opal_progress",
        default: Some("false"),
        help: "run the OPAL progress engine thread",
    },
    // CRS component tunables.
    ParamDef {
        key: "crs_blcr_sim_exclude",
        default: Some(""),
        help: "memory exclusion hints: comma-separated image sections to omit",
    },
    ParamDef {
        key: "crs_blcr_sim_fail_every",
        default: Some("0"),
        help: "fault injection: fail every Nth local checkpoint (0 = never)",
    },
    ParamDef {
        key: "crs_incr_enabled",
        default: Some("false"),
        help: "incremental checkpointing: ship only dirty chunks per interval",
    },
    ParamDef {
        key: "crs_incr_chunk_kb",
        default: Some("4"),
        help: "incremental checkpointing: chunk size in KiB for change detection",
    },
    ParamDef {
        key: "crs_incr_full_every",
        default: Some("16"),
        help: "incremental checkpointing: force a full image every N intervals (caps delta-chain length)",
    },
    // OPAL data-path pool tunables.
    ParamDef {
        key: "opal_hash_workers",
        default: Some("4"),
        help: "bounded worker pool size for parallel chunk hashing and digest verification",
    },
    ParamDef {
        key: "opal_buffer_pool_cap",
        default: Some("8"),
        help: "maximum reusable chunk/frame buffers parked per data-path buffer pool",
    },
    // ORTE runtime tunables.
    ParamDef {
        key: "orte_spare_nodes",
        default: Some("0"),
        help: "hold the last N topology nodes out of placement as a partial-restart spare pool",
    },
    // PLM component tunables.
    ParamDef {
        key: "plm_map_by",
        default: Some("node"),
        help: "placement policy: node | slot",
    },
    ParamDef {
        key: "plm_slots_per_node",
        default: Some("2"),
        help: "slots per node for map-by-slot placement",
    },
    ParamDef {
        key: "plm_rsh_sim_session_ms",
        default: Some("150"),
        help: "rsh launcher: simulated per-node session setup time",
    },
    ParamDef {
        key: "plm_slurm_sim_wave_ms",
        default: Some("40"),
        help: "slurm launcher: simulated per-wave launch time",
    },
    ParamDef {
        key: "plm_slurm_sim_setup_ms",
        default: Some("500"),
        help: "slurm launcher: simulated allocation setup time",
    },
    // SNAPC commit-pipeline tunables.
    ParamDef {
        key: "snapc_early_release",
        default: Some("false"),
        help: "release ranks at local commit and gather to stable storage in the background",
    },
    ParamDef {
        key: "snapc_gather_workers",
        default: Some("4"),
        help: "bounded worker pool size for the parallel FILEM gather/drain",
    },
    ParamDef {
        key: "snapc_gather_delay_ms",
        default: Some("0"),
        help: "fault-injection delay before the early-release gather starts (widens the local-committed window)",
    },
    // FILEM component tunables.
    ParamDef {
        key: "filem_rsh_sim_session_ms",
        default: Some("120"),
        help: "rsh file mover: simulated per-session transfer setup time",
    },
    ParamDef {
        key: "filem_oob_stream_session_ms",
        default: Some("20"),
        help: "OOB-stream file mover: simulated per-session setup time",
    },
    ParamDef {
        key: "filem_replica_factor",
        default: Some("1"),
        help: "replica file mover: ring-replication factor k (copies beyond the rank's own node)",
    },
    ParamDef {
        key: "filem_replica_session_ms",
        default: Some("2"),
        help: "replica file mover: simulated per-tree session setup for the write-behind drain",
    },
    ParamDef {
        key: "filem_replica_writebehind",
        default: Some("true"),
        help: "replica file mover: drain to stable storage asynchronously after peer-memory commit",
    },
    ParamDef {
        key: "filem_dedup_enabled",
        default: Some("false"),
        help: "commit checkpoints through the content-addressed chunk store (cross-rank and cross-interval dedup)",
    },
    ParamDef {
        key: "filem_dedup_gc_batch",
        default: Some("64"),
        help: "dedup store: maximum count-zero blobs swept per GC batch at interval retirement",
    },
    ParamDef {
        key: "filem_sched_policy",
        default: Some("spread"),
        help: "gather wave scheduling: spread (least-loaded link first) | fifo (legacy index order)",
    },
    // Durable FT event journal (ORTE runtime).
    ParamDef {
        key: "journal_enabled",
        default: Some("true"),
        help: "append every trace event to the hash-chained FT journal (cr-replay verifies/replays it)",
    },
    ParamDef {
        key: "journal_dir",
        default: Some(""),
        help: "journal directory override (empty = <runtime base dir>/journal)",
    },
    ParamDef {
        key: "journal_fsync_every",
        default: Some("0"),
        help: "fsync the journal after every N appends (0 = OS writeback; shutdown still syncs)",
    },
    // Launcher-written informational keys (recorded in snapshot metadata
    // so a restart can reconstruct the original launch).
    ParamDef {
        key: "np",
        default: None,
        help: "number of ranks (written by the launcher into snapshot metadata)",
    },
    ParamDef {
        key: "tools_app",
        default: None,
        help: "workload name (written by the tools launcher into snapshot metadata)",
    },
    // Workload knobs (read through the tools launcher).
    ParamDef {
        key: "tools_rounds",
        default: None,
        help: "workload rounds/iterations override",
    },
    ParamDef {
        key: "tools_cells",
        default: None,
        help: "stencil workload: cells per rank override",
    },
    ParamDef {
        key: "tools_tasks",
        default: None,
        help: "master/worker workload: task count override",
    },
];

/// Seed `params` with every registered default (weakest source, so any
/// explicit setting still wins). Called on the job launch path so that
/// snapshot metadata records the complete effective configuration.
pub fn register_defaults(params: &McaParams) {
    for def in KNOWN_PARAMS {
        if let Some(value) = def.default {
            params.default_value(def.key, value);
        }
    }
}

/// Is `key` a registered parameter?
pub fn is_registered(key: &str) -> bool {
    KNOWN_PARAMS.iter().any(|d| d.key == key)
}

/// Keys set in `params` that are not registered — the `ompi-info` /
/// launcher diagnostic for typo'd `--mca` keys.
pub fn unknown_keys(params: &McaParams) -> Vec<String> {
    params
        .dump()
        .into_iter()
        .map(|(k, _)| k)
        .filter(|k| !is_registered(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_weakest() {
        let p = McaParams::new();
        p.set_from("plm_map_by", "slot", crate::ParamSource::CommandLine);
        register_defaults(&p);
        assert_eq!(p.get("plm_map_by").as_deref(), Some("slot"));
        assert_eq!(p.get("plm_slots_per_node").as_deref(), Some("2"));
    }

    #[test]
    fn selection_keys_have_no_default() {
        // A default selection directive would defeat priority-based
        // component selection; the table must keep them unset.
        for key in ["crs", "crcp", "snapc", "filem", "plm"] {
            let def = KNOWN_PARAMS
                .iter()
                .find(|d| d.key == key)
                .unwrap_or_else(|| panic!("{key} registered"));
            assert!(def.default.is_none(), "{key} must not default");
        }
        let p = McaParams::new();
        register_defaults(&p);
        assert_eq!(p.get("crs"), None);
    }

    #[test]
    fn unknown_key_diagnosis() {
        let p = McaParams::new();
        p.set("crs", "blcr_sim");
        p.set("crs_blcr_fail_evry", "3"); // typo
        assert_eq!(unknown_keys(&p), vec!["crs_blcr_fail_evry".to_string()]);
        assert!(is_registered("ft_cr_enabled"));
        assert!(!is_registered(""));
    }

    #[test]
    fn table_has_no_duplicates() {
        for (i, a) in KNOWN_PARAMS.iter().enumerate() {
            for b in &KNOWN_PARAMS[i + 1..] {
                assert_ne!(a.key, b.key, "duplicate registration");
            }
        }
    }
}
