//! Modular Component Architecture (MCA).
//!
//! Open MPI defines internal APIs called *frameworks* (e.g. the process
//! launch framework, the checkpoint/restart service framework); each
//! framework has one or more *components* (e.g. the `SLURM` and `RSH`
//! components of the launch framework) that are **selected at runtime**.
//! This crate reproduces that machinery:
//!
//! * [`McaParams`] — the runtime parameter store (`--mca key value` on the
//!   command line, config files, programmatic defaults), with provenance
//!   tracking so later sources override earlier ones predictably.
//! * [`Framework`] — a typed registry of components for one framework.
//!   Selection follows Open MPI's rules: an explicit parameter names the
//!   component(s) to use (comma list = preference order, leading `^` =
//!   exclusion list); otherwise the highest-priority component wins.
//!
//! The checkpoint/restart paper leans on exactly this property: "The
//! modular design also allows for multiple implementations of a task to be
//! interchangeable at runtime" — the component-matrix integration test (E5
//! in DESIGN.md) swaps every CRS × CRCP × SNAPC × FILEM combination through
//! these registries without recompiling callers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod framework;
pub mod params;
pub mod registry;

pub use framework::{Framework, Registration, SelectError};
pub use params::{McaParams, ParamSource};
pub use registry::{register_defaults, ParamDef, KNOWN_PARAMS};
