//! Framework/component registries with Open MPI selection semantics.
//!
//! A [`Framework`] is a named registry of component factories for one
//! internal API (one Rust trait object type). Components carry a *priority*;
//! the selection parameter — whose key is the framework name, e.g.
//! `--mca crs blcr_sim` — controls which component is instantiated:
//!
//! * absent/empty → highest priority available component wins,
//! * `name1,name2` → first name in the list that is registered wins,
//! * `^name1,name2` → exclusion list; highest priority among the rest wins.

use std::fmt;
use std::sync::Arc;

use crate::params::McaParams;

/// Factory signature: build a component instance from the parameter store.
pub type Factory<C> = Arc<dyn Fn(&McaParams) -> Box<C> + Send + Sync>;

/// One registered component.
pub struct Registration<C: ?Sized> {
    /// Component name used in selection parameters.
    pub name: &'static str,
    /// Selection priority when no explicit choice is made (higher wins).
    pub priority: i32,
    /// One-line description shown by `ompi_info`-style listings.
    pub describe: &'static str,
    factory: Factory<C>,
}

impl<C: ?Sized> Clone for Registration<C> {
    fn clone(&self) -> Self {
        Registration {
            name: self.name,
            priority: self.priority,
            describe: self.describe,
            factory: Arc::clone(&self.factory),
        }
    }
}

impl<C: ?Sized> fmt::Debug for Registration<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registration")
            .field("name", &self.name)
            .field("priority", &self.priority)
            .finish()
    }
}

/// Component selection failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// The framework has no registered components at all.
    Empty {
        /// Framework name.
        framework: String,
    },
    /// An explicitly requested component name is not registered.
    UnknownComponent {
        /// Framework name.
        framework: String,
        /// The name that was requested.
        requested: String,
        /// Names that are registered.
        available: Vec<&'static str>,
    },
    /// An exclusion list removed every component.
    AllExcluded {
        /// Framework name.
        framework: String,
    },
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::Empty { framework } => {
                write!(f, "framework {framework:?} has no registered components")
            }
            SelectError::UnknownComponent {
                framework,
                requested,
                available,
            } => write!(
                f,
                "framework {framework:?} has no component {requested:?} (available: {})",
                available.join(", ")
            ),
            SelectError::AllExcluded { framework } => write!(
                f,
                "exclusion list for framework {framework:?} removed every component"
            ),
        }
    }
}

impl std::error::Error for SelectError {}

/// A typed component registry for one framework.
///
/// # Examples
///
/// ```
/// use mca::{Framework, McaParams};
///
/// trait Checkpointer: Send { fn id(&self) -> &'static str; }
/// struct Fast; impl Checkpointer for Fast { fn id(&self) -> &'static str { "fast" } }
/// struct Safe; impl Checkpointer for Safe { fn id(&self) -> &'static str { "safe" } }
///
/// let mut fw: Framework<dyn Checkpointer> = Framework::new("ckpt");
/// fw.register("fast", 20, "speed over coverage", |_| Box::new(Fast));
/// fw.register("safe", 10, "coverage over speed", |_| Box::new(Safe));
///
/// let params = McaParams::new();
/// assert_eq!(fw.select(&params).unwrap().id(), "fast"); // highest priority
/// params.set("ckpt", "safe");                            // runtime override
/// assert_eq!(fw.select(&params).unwrap().id(), "safe");
/// ```
pub struct Framework<C: ?Sized> {
    name: &'static str,
    components: Vec<Registration<C>>,
}

impl<C: ?Sized> fmt::Debug for Framework<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Framework")
            .field("name", &self.name)
            .field("components", &self.components)
            .finish()
    }
}

impl<C: ?Sized> Framework<C> {
    /// Create an empty framework named `name`. The name doubles as the MCA
    /// selection parameter key.
    pub fn new(name: &'static str) -> Self {
        Framework {
            name,
            components: Vec::new(),
        }
    }

    /// Framework name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Register a component.
    ///
    /// # Panics
    /// Panics on duplicate component names — component sets are assembled
    /// at startup by this codebase, so a duplicate is a programming error.
    pub fn register(
        &mut self,
        name: &'static str,
        priority: i32,
        describe: &'static str,
        factory: impl Fn(&McaParams) -> Box<C> + Send + Sync + 'static,
    ) -> &mut Self {
        assert!(
            self.components.iter().all(|c| c.name != name),
            "duplicate component {name:?} in framework {:?}",
            self.name
        );
        self.components.push(Registration {
            name,
            priority,
            describe,
            factory: Arc::new(factory),
        });
        self
    }

    /// All registered component names, highest priority first.
    pub fn available(&self) -> Vec<&'static str> {
        let mut regs: Vec<&Registration<C>> = self.components.iter().collect();
        regs.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.name.cmp(b.name)));
        regs.into_iter().map(|r| r.name).collect()
    }

    /// Registered component metadata (for `ompi_info`-style listings).
    pub fn registrations(&self) -> &[Registration<C>] {
        &self.components
    }

    /// Resolve which component the parameter store selects, without
    /// instantiating it.
    pub fn resolve(&self, params: &McaParams) -> Result<&Registration<C>, SelectError> {
        if self.components.is_empty() {
            return Err(SelectError::Empty {
                framework: self.name.to_string(),
            });
        }
        let directive = params.get(self.name).unwrap_or_default();
        let directive = directive.trim();

        if directive.is_empty() {
            return Ok(self.highest(self.components.iter()));
        }

        if let Some(exclusions) = directive.strip_prefix('^') {
            let excluded: Vec<&str> = exclusions.split(',').map(str::trim).collect();
            // Unknown names in an exclusion list are diagnosed: excluding a
            // component that does not exist is almost always a typo.
            for name in &excluded {
                if !self.components.iter().any(|c| c.name == *name) {
                    return Err(SelectError::UnknownComponent {
                        framework: self.name.to_string(),
                        requested: (*name).to_string(),
                        available: self.available(),
                    });
                }
            }
            let survivors: Vec<&Registration<C>> = self
                .components
                .iter()
                .filter(|c| !excluded.contains(&c.name))
                .collect();
            if survivors.is_empty() {
                return Err(SelectError::AllExcluded {
                    framework: self.name.to_string(),
                });
            }
            return Ok(self.highest(survivors.into_iter()));
        }

        // Preference list: first registered name wins.
        for want in directive.split(',').map(str::trim) {
            if let Some(reg) = self.components.iter().find(|c| c.name == want) {
                return Ok(reg);
            }
        }
        Err(SelectError::UnknownComponent {
            framework: self.name.to_string(),
            requested: directive.to_string(),
            available: self.available(),
        })
    }

    /// Select and instantiate a component per the parameter store.
    pub fn select(&self, params: &McaParams) -> Result<Box<C>, SelectError> {
        let reg = self.resolve(params)?;
        Ok((reg.factory)(params))
    }

    /// Instantiate a component by exact name (used by restart paths where
    /// the snapshot metadata records which component produced the snapshot).
    pub fn instantiate(&self, name: &str, params: &McaParams) -> Result<Box<C>, SelectError> {
        let reg = self
            .components
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| SelectError::UnknownComponent {
                framework: self.name.to_string(),
                requested: name.to_string(),
                available: self.available(),
            })?;
        Ok((reg.factory)(params))
    }

    fn highest<'a>(&self, regs: impl Iterator<Item = &'a Registration<C>>) -> &'a Registration<C>
    where
        C: 'a,
    {
        regs.max_by(|a, b| {
            a.priority
                .cmp(&b.priority)
                .then_with(|| b.name.cmp(a.name))
        })
        .expect("caller guarantees non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Greeter: Send {
        fn greet(&self) -> String;
    }

    struct Fixed(&'static str);
    impl Greeter for Fixed {
        fn greet(&self) -> String {
            self.0.to_string()
        }
    }

    fn test_framework() -> Framework<dyn Greeter> {
        let mut fw: Framework<dyn Greeter> = Framework::new("greet");
        fw.register("alpha", 10, "alpha greeter", |_| Box::new(Fixed("alpha")));
        fw.register("beta", 20, "beta greeter", |_| Box::new(Fixed("beta")));
        fw.register("gamma", 20, "gamma greeter", |_| Box::new(Fixed("gamma")));
        fw
    }

    #[test]
    fn default_selection_is_highest_priority() {
        let fw = test_framework();
        let params = McaParams::new();
        // beta and gamma tie at 20; name order breaks the tie (beta < gamma).
        assert_eq!(fw.select(&params).unwrap().greet(), "beta");
    }

    #[test]
    fn explicit_name_wins() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "alpha");
        assert_eq!(fw.select(&params).unwrap().greet(), "alpha");
    }

    #[test]
    fn preference_list_takes_first_registered() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "zeta, alpha, beta");
        assert_eq!(fw.select(&params).unwrap().greet(), "alpha");
    }

    #[test]
    fn exclusion_list() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "^beta,gamma");
        assert_eq!(fw.select(&params).unwrap().greet(), "alpha");
    }

    #[test]
    fn excluding_everything_is_an_error() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "^alpha,beta,gamma");
        assert!(matches!(
            fw.select(&params),
            Err(SelectError::AllExcluded { .. })
        ));
    }

    #[test]
    fn excluding_unknown_is_an_error() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "^delta");
        assert!(matches!(
            fw.select(&params),
            Err(SelectError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn unknown_component_lists_available() {
        let fw = test_framework();
        let params = McaParams::new();
        params.set("greet", "nope");
        let err = match fw.select(&params) {
            Err(e) => e,
            Ok(_) => panic!("selection must fail"),
        };
        let msg = err.to_string();
        assert!(msg.contains("nope"));
        assert!(msg.contains("alpha"));
        assert!(msg.contains("beta"));
    }

    #[test]
    fn empty_framework_is_an_error() {
        let fw: Framework<dyn Greeter> = Framework::new("empty");
        assert!(matches!(
            fw.select(&McaParams::new()),
            Err(SelectError::Empty { .. })
        ));
    }

    #[test]
    fn instantiate_by_name_for_restart() {
        let fw = test_framework();
        let params = McaParams::new();
        // Selection parameter says beta, but restart metadata says alpha.
        params.set("greet", "beta");
        assert_eq!(fw.instantiate("alpha", &params).unwrap().greet(), "alpha");
        assert!(fw.instantiate("missing", &params).is_err());
    }

    #[test]
    fn available_sorted_by_priority() {
        let fw = test_framework();
        assert_eq!(fw.available(), vec!["beta", "gamma", "alpha"]);
    }

    #[test]
    #[should_panic(expected = "duplicate component")]
    fn duplicate_registration_panics() {
        let mut fw: Framework<dyn Greeter> = Framework::new("greet");
        fw.register("alpha", 1, "", |_| Box::new(Fixed("a")));
        fw.register("alpha", 2, "", |_| Box::new(Fixed("b")));
    }

    #[test]
    fn factories_see_params() {
        struct FromParam(String);
        impl Greeter for FromParam {
            fn greet(&self) -> String {
                self.0.clone()
            }
        }
        let mut fw: Framework<dyn Greeter> = Framework::new("greet");
        fw.register("custom", 1, "", |p: &McaParams| {
            Box::new(FromParam(p.get("greet_custom_word").unwrap_or_default()))
        });
        let params = McaParams::new();
        params.set("greet_custom_word", "hello");
        assert_eq!(fw.select(&params).unwrap().greet(), "hello");
    }
}
