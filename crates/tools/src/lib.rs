//! Command line tools (paper §4's asynchronous interface).
//!
//! The original system ships `ompi-checkpoint`, `ompi-restart`, and
//! `ompi-ps`; their value proposition is that a user or scheduler needs
//! only a PID or a snapshot reference — never the original `mpirun`
//! arguments or the raw checkpointer files. Our simulated cluster lives
//! inside one host process, so the binaries here operate on the pieces
//! that genuinely persist across host processes: **snapshot references on
//! disk**. Each binary also doubles as a demonstration scenario driving a
//! live simulated job.
//!
//! Binaries:
//!
//! * `mpirun-sim` — launch a workload on a simulated cluster, optionally
//!   checkpointing it on an interval (`--ckpt-every`), and print progress.
//! * `ompi-checkpoint` — launch a long-running job, checkpoint it
//!   (optionally `--term`), and print the global snapshot reference —
//!   the same UX as the real tool.
//! * `ompi-restart` — resurrect a job from a global snapshot reference
//!   directory produced by either of the above (works across host
//!   process boundaries: the only input is the directory).
//! * `ompi-snapshot-info` — inspect a snapshot reference: intervals,
//!   ranks, checkpointers, sizes, recorded launch parameters.
//!
//! This crate also hosts the shared argument-parsing helpers, kept
//! dependency-free (no clap in the approved set).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod apps;

pub use args::ArgSpec;
