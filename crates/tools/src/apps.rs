//! Workload registry shared by the CLI binaries: `--app <name>` selects a
//! workload; restart must use the same name (it is recorded in the
//! snapshot's launch parameters).

use std::sync::Arc;

use cr_core::CrError;
use mca::McaParams;
use ompi::app::RunEnd;
use ompi::{mpirun, restart, MpiJob, RestartOptions, RestartSource, RunConfig};
use orte::Runtime;
use workloads::master_worker::MasterWorkerApp;
use workloads::ring::RingApp;
use workloads::stencil::StencilApp;
use workloads::traffic::TrafficApp;

/// MCA key the tools use to record which workload a job ran.
pub const APP_PARAM: &str = "tools_app";

/// Workload names accepted by `--app`.
pub const APP_NAMES: [&str; 4] = ["ring", "stencil", "master_worker", "traffic"];

/// Per-rank outcome summaries of a finished job.
pub type RankSummaries = Vec<(String, RunEnd)>;

/// A type-erased running job: final per-rank summaries as strings.
pub struct AnyJob {
    waiter: Box<dyn FnOnce() -> Result<RankSummaries, CrError> + Send>,
    handle: Arc<orte::JobHandle>,
}

impl AnyJob {
    fn new<S: serde::Serialize + Send + 'static>(job: MpiJob<S>) -> AnyJob {
        let handle = Arc::clone(job.handle());
        AnyJob {
            handle,
            waiter: Box::new(move || {
                let results = job.wait()?;
                Ok(results
                    .into_iter()
                    .map(|(state, end)| {
                        let summary = codec::to_bytes(&state)
                            .map(|b| format!("{} state bytes", b.len()))
                            .unwrap_or_else(|e| format!("unencodable state: {e}"));
                        (summary, end)
                    })
                    .collect())
            }),
        }
    }

    /// The ORTE job handle (checkpoint, terminate).
    pub fn handle(&self) -> &Arc<orte::JobHandle> {
        &self.handle
    }

    /// Wait for completion.
    pub fn wait(self) -> Result<RankSummaries, CrError> {
        (self.waiter)()
    }
}

fn scaled(params: &McaParams, key: &str, default: u64) -> u64 {
    params.get_parsed_or(key, default).unwrap_or(default)
}

/// Launch workload `name` on `nprocs` ranks. Workload knobs come from MCA
/// parameters (`tools_rounds`, `tools_cells`, `tools_tasks`).
pub fn launch_named(
    runtime: &Runtime,
    name: &str,
    nprocs: u32,
    params: Arc<McaParams>,
) -> Result<AnyJob, CrError> {
    params.set(APP_PARAM, name);
    let config = RunConfig {
        nprocs,
        params: Arc::clone(&params),
    };
    match name {
        "ring" => Ok(AnyJob::new(mpirun(
            runtime,
            Arc::new(RingApp {
                rounds: scaled(&params, "tools_rounds", 200_000),
            }),
            config,
        )?)),
        "stencil" => Ok(AnyJob::new(mpirun(
            runtime,
            Arc::new(StencilApp {
                cells_per_rank: scaled(&params, "tools_cells", 4096) as usize,
                iters: scaled(&params, "tools_rounds", 50_000),
                ..Default::default()
            }),
            config,
        )?)),
        "master_worker" => Ok(AnyJob::new(mpirun(
            runtime,
            Arc::new(MasterWorkerApp {
                tasks: scaled(&params, "tools_tasks", 100_000),
                wave: 64,
            }),
            config,
        )?)),
        "traffic" => Ok(AnyJob::new(mpirun(
            runtime,
            Arc::new(TrafficApp {
                rounds: scaled(&params, "tools_rounds", 100_000),
                ..Default::default()
            }),
            config,
        )?)),
        other => Err(CrError::Unsupported {
            detail: format!("unknown app {other:?} (available: {})", APP_NAMES.join(", ")),
        }),
    }
}

/// Restart whatever workload a global snapshot reference recorded.
pub fn restart_named(
    runtime: &Runtime,
    global_ref: &std::path::Path,
    interval: Option<u64>,
) -> Result<AnyJob, CrError> {
    restart_named_with(
        runtime,
        global_ref,
        RestartOptions {
            interval,
            ..RestartOptions::default()
        },
    )
}

/// [`restart_named`] with an explicit restart image source
/// (`ompi-restart --source replica|stable|auto`).
#[deprecated(note = "use restart_named_with(runtime, global_ref, RestartOptions { .. })")]
pub fn restart_named_from(
    runtime: &Runtime,
    global_ref: &std::path::Path,
    interval: Option<u64>,
    source: RestartSource,
) -> Result<AnyJob, CrError> {
    restart_named_with(
        runtime,
        global_ref,
        RestartOptions {
            source,
            interval,
            verify: true,
            ranks: None,
        },
    )
}

/// Restart whatever workload a global snapshot reference recorded, with
/// full control over how ([`RestartOptions`]: source tier, interval,
/// chunk verification).
pub fn restart_named_with(
    runtime: &Runtime,
    global_ref: &std::path::Path,
    opts: RestartOptions,
) -> Result<AnyJob, CrError> {
    // Read the recorded app name from the snapshot's launch parameters.
    let global = cr_core::GlobalSnapshot::open(global_ref)?;
    let launch = global.launch_params();
    let name = launch
        .iter()
        .find(|(k, _)| k == APP_PARAM)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| CrError::BadSnapshot {
            detail: format!("snapshot records no {APP_PARAM} launch parameter"),
        })?;
    let params_store = McaParams::from_dump(launch.iter().map(|(k, v)| (k.as_str(), v.as_str())));
    let params = Arc::new(params_store);
    match name.as_str() {
        "ring" => Ok(AnyJob::new(restart(
            runtime,
            Arc::new(RingApp {
                rounds: scaled(&params, "tools_rounds", 200_000),
            }),
            global_ref,
            opts,
        )?)),
        "stencil" => Ok(AnyJob::new(restart(
            runtime,
            Arc::new(StencilApp {
                cells_per_rank: scaled(&params, "tools_cells", 4096) as usize,
                iters: scaled(&params, "tools_rounds", 50_000),
                ..Default::default()
            }),
            global_ref,
            opts,
        )?)),
        "master_worker" => Ok(AnyJob::new(restart(
            runtime,
            Arc::new(MasterWorkerApp {
                tasks: scaled(&params, "tools_tasks", 100_000),
                wave: 64,
            }),
            global_ref,
            opts,
        )?)),
        "traffic" => Ok(AnyJob::new(restart(
            runtime,
            Arc::new(TrafficApp {
                rounds: scaled(&params, "tools_rounds", 100_000),
                ..Default::default()
            }),
            global_ref,
            opts,
        )?)),
        other => Err(CrError::Unsupported {
            detail: format!("snapshot was taken by unknown app {other:?}"),
        }),
    }
}

/// Build a runtime for the tools: `nodes` nodes rooted at `base`.
pub fn tool_runtime(base: &std::path::Path, nodes: u32) -> Result<Runtime, CrError> {
    Runtime::new(
        netsim::Topology::uniform(nodes, netsim::LinkSpec::gigabit_ethernet()),
        base,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tools_apps_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unknown_app_rejected() {
        let rt = tool_runtime(&tmp("unknown"), 1).unwrap();
        let err = match launch_named(&rt, "nope", 2, Arc::new(McaParams::new())) {
            Err(e) => e,
            Ok(_) => panic!("unknown app must fail"),
        };
        assert!(err.to_string().contains("ring"));
        rt.shutdown();
    }

    #[test]
    fn launch_and_wait_ring() {
        let rt = tool_runtime(&tmp("ring"), 1).unwrap();
        let params = Arc::new(McaParams::new());
        params.set("tools_rounds", "50");
        let job = launch_named(&rt, "ring", 2, params).unwrap();
        let results = job.wait().unwrap();
        assert_eq!(results.len(), 2);
        rt.shutdown();
    }

    #[test]
    fn checkpoint_and_restart_via_registry() {
        let rt = tool_runtime(&tmp("cr"), 2).unwrap();
        let params = Arc::new(McaParams::new());
        params.set("tools_rounds", "100000");
        let job = launch_named(&rt, "traffic", 3, params).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(40));
        let outcome = job
            .handle()
            .checkpoint(&cr_core::request::CheckpointOptions::tool().and_terminate())
            .unwrap();
        job.wait().unwrap();
        rt.shutdown();

        let rt2 = tool_runtime(&tmp("cr_restart"), 1).unwrap();
        let job = restart_named(&rt2, &outcome.global_snapshot, None).unwrap();
        job.handle().request_terminate();
        let results = job.wait().unwrap();
        assert_eq!(results.len(), 3);
        rt2.shutdown();
    }
}
