//! Minimal command line argument parsing (no external dependencies).
//!
//! Supports `--flag`, `--key value`, and the MCA passthrough
//! `--mca key value` handled by [`mca::McaParams::consume_cli_args`].

use std::collections::BTreeMap;

/// Parsed arguments: flags, key/value options, and positionals.
#[derive(Debug, Default, Clone)]
pub struct ArgSpec {
    flags: Vec<String>,
    options: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl ArgSpec {
    /// Parse `args` (not including the program name). `option_keys` lists the
    /// `--key value` options; any other `--name` is a flag.
    pub fn parse(args: &[String], option_keys: &[&str]) -> Result<ArgSpec, String> {
        let mut spec = ArgSpec::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if option_keys.contains(&name) {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    spec.options.insert(name.to_string(), value.clone());
                } else {
                    spec.flags.push(name.to_string());
                }
            } else {
                spec.positional.push(arg.clone());
            }
        }
        Ok(spec)
    }

    /// True when `--name` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Value of `--name value`, if given.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parse `--name value` as `T`, with a default.
    pub fn option_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.option(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name} value {raw:?} is invalid")),
        }
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_options_positionals() {
        let spec = ArgSpec::parse(
            &argv(&["--np", "8", "--term", "snapshot.ckpt", "--app", "ring"]),
            &["np", "app"],
        )
        .unwrap();
        assert_eq!(spec.option("np"), Some("8"));
        assert_eq!(spec.option("app"), Some("ring"));
        assert!(spec.flag("term"));
        assert!(!spec.flag("verbose"));
        assert_eq!(spec.positional(), &["snapshot.ckpt".to_string()]);
        assert_eq!(spec.option_parsed("np", 1u32).unwrap(), 8);
        assert_eq!(spec.option_parsed("missing", 4u32).unwrap(), 4);
    }

    #[test]
    fn missing_option_value_is_an_error() {
        assert!(ArgSpec::parse(&argv(&["--np"]), &["np"]).is_err());
    }

    #[test]
    fn bad_parse_reported() {
        let spec = ArgSpec::parse(&argv(&["--np", "lots"]), &["np"]).unwrap();
        assert!(spec.option_parsed("np", 1u32).is_err());
    }
}
