//! `ompi-snapshot-info` — inspect a snapshot reference.
//!
//! ```text
//! ompi-snapshot-info <global-snapshot-ref>
//! ```
//!
//! Prints the jobid, rank count, committed intervals, per-rank local
//! snapshot details (checkpointer, host, size), and the recorded launch
//! parameters.

use cr_core::{GlobalSnapshot, Rank};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("ompi-snapshot-info: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let spec = ArgSpec::parse(&raw, &[])?;
    let reference = spec
        .positional()
        .first()
        .ok_or("usage: ompi-snapshot-info <global-snapshot-ref>")?;
    let global =
        GlobalSnapshot::open(std::path::Path::new(reference)).map_err(|e| e.to_string())?;

    println!("Global snapshot reference: {reference}");
    println!("  job:       {}", global.job());
    println!("  ranks:     {}", global.nprocs());
    let intervals = global.intervals();
    println!("  intervals: {intervals:?}");
    let pending = global.local_committed_intervals();
    if !pending.is_empty() {
        // Early-release gathers still in flight (or stranded by a
        // mid-gather failure): visible for diagnosis, unusable for restart.
        println!("  local-committed (not restartable): {pending:?}");
    }
    for interval in &intervals {
        let size = global
            .interval_size_bytes(*interval)
            .map_err(|e| e.to_string())?;
        println!(
            "  interval {interval}: {size} bytes on stable storage ({})",
            global.commit_state(*interval)
        );
        for r in 0..global.nprocs() {
            let local = global
                .local_snapshot(*interval, Rank(r))
                .map_err(|e| e.to_string())?;
            println!(
                "    rank {r}: crs={}, host={}, {} bytes",
                local.crs_component(),
                local.hostname().unwrap_or("?"),
                local.size_bytes().map_err(|e| e.to_string())?
            );
        }
    }
    println!("  launch parameters:");
    for (k, v) in global.launch_params() {
        println!("    {k} = {v}");
    }
    Ok(())
}
