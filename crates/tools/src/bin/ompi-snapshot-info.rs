//! `ompi-snapshot-info` — inspect a snapshot reference.
//!
//! ```text
//! ompi-snapshot-info <global-snapshot-ref>
//! ```
//!
//! Prints the jobid, rank count, committed intervals, per-rank local
//! snapshot details (checkpointer, host, size), and the recorded launch
//! parameters.  Intervals committed through the content-addressed dedup
//! store (`filem_dedup_enabled`) print per-rank chunk counts and the
//! interval's dedup ratio instead of local snapshot directories, plus a
//! chunk-store summary with a refcount histogram.

use std::collections::BTreeMap;

use cr_core::{GlobalSnapshot, Rank};
use opal::store::{ChunkId, ChunkStore};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("ompi-snapshot-info: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let spec = ArgSpec::parse(&raw, &[])?;
    let reference = spec
        .positional()
        .first()
        .ok_or("usage: ompi-snapshot-info <global-snapshot-ref>")?;
    let global =
        GlobalSnapshot::open(std::path::Path::new(reference)).map_err(|e| e.to_string())?;

    println!("Global snapshot reference: {reference}");
    println!("  job:       {}", global.job());
    println!("  ranks:     {}", global.nprocs());
    let intervals = global.intervals();
    println!("  intervals: {intervals:?}");
    let pending = global.local_committed_intervals();
    if !pending.is_empty() {
        // Early-release gathers still in flight (or stranded by a
        // mid-gather failure): visible for diagnosis, unusable for restart.
        println!("  local-committed (not restartable): {pending:?}");
    }
    let mut any_dedup = false;
    for interval in &intervals {
        if !global.chunk_manifests(*interval).is_empty() {
            any_dedup = true;
            print_dedup_interval(&global, *interval)?;
            print_gather_stats(&global, *interval);
            print_msg_log(&global, *interval);
            continue;
        }
        let size = global
            .interval_size_bytes(*interval)
            .map_err(|e| e.to_string())?;
        println!(
            "  interval {interval}: {size} bytes on stable storage ({})",
            global.commit_state(*interval)
        );
        for r in 0..global.nprocs() {
            let local = global
                .local_snapshot(*interval, Rank(r))
                .map_err(|e| e.to_string())?;
            println!(
                "    rank {r}: crs={}, host={}, {} bytes",
                local.crs_component(),
                local.hostname().unwrap_or("?"),
                local.size_bytes().map_err(|e| e.to_string())?
            );
        }
        print_gather_stats(&global, *interval);
        print_msg_log(&global, *interval);
    }
    print_spare_pool(&global);
    if any_dedup {
        print_chunk_store(&global)?;
    }
    println!("  launch parameters:");
    for (k, v) in global.launch_params() {
        println!("    {k} = {v}");
    }
    print_journal_summary(&global);
    Ok(())
}

/// The runtime's FT event journal, when present next to the stable
/// storage tree (`<base>/journal/ft.jrnl` for a reference under
/// `<base>/stable/`): entry/byte counts and chain status, so an operator
/// sees at a glance whether the audit trail is intact and where to point
/// `cr-replay`.
fn print_journal_summary(global: &GlobalSnapshot) {
    let path = match global.dir().parent().and_then(|stable| stable.parent()) {
        Some(base) => base.join("journal").join(journal::FILE_NAME),
        None => return,
    };
    if !path.exists() {
        return;
    }
    println!("  journal: {}", path.display());
    match journal::verify(&path) {
        Ok(report) => {
            println!(
                "    {} entries, {} bytes, tail hash {:016x}",
                report.entries, report.bytes, report.tail_hash
            );
            match &report.broken {
                None => println!("    chain: intact"),
                Some(b) => println!("    chain: BROKEN — {b}"),
            }
        }
        Err(e) => println!("    unreadable: {e}"),
    }
}

/// One dedup interval: per-rank manifest chunk counts and the interval's
/// dedup ratio (logical image bytes over the bytes its distinct chunks
/// occupy in the store).
fn print_dedup_interval(global: &GlobalSnapshot, interval: u64) -> Result<(), String> {
    let mut logical = 0u64;
    let mut records = 0usize;
    let mut distinct: BTreeMap<ChunkId, u64> = BTreeMap::new();
    let mut per_rank = Vec::new();
    for (rank, rendered) in global.chunk_manifests(interval) {
        let manifest = codec::ChunkManifest::parse(rendered).map_err(|e| e.to_string())?;
        let ids = orte::store::manifest_ids(&manifest);
        records += ids.len();
        logical += manifest.total_bytes();
        for id in &ids {
            distinct.insert(*id, u64::from(id.len));
        }
        per_rank.push((rank, ids.len(), manifest.total_bytes()));
    }
    let stored: u64 = distinct.values().sum();
    println!(
        "  interval {interval}: dedup store, {logical} logical bytes in {records} chunk \
         records, {} distinct chunks ({stored} bytes), dedup ratio {:.2} ({})",
        distinct.len(),
        logical as f64 / stored.max(1) as f64,
        global.commit_state(interval)
    );
    for (rank, chunks, bytes) in per_rank {
        println!("    rank {}: {chunks} chunks, {bytes} bytes", rank.0);
    }
    Ok(())
}

/// How the interval's gather to stable storage was scheduled, when the
/// commit went through the contention-aware wave scheduler: policy, wave
/// shape, peak concurrent transfers on any one link, real wall-clock
/// throughput, and the per-link byte split.
fn print_gather_stats(global: &GlobalSnapshot, interval: u64) {
    let Some(line) = global.gather_stats(interval) else {
        return;
    };
    let Some(stats) = orte::sched::GatherSchedStats::parse(line) else {
        println!("    gather schedule (unparsed): {line}");
        return;
    };
    println!(
        "    gather schedule: policy={}, {} waves, peak {} transfers/link, \
         {} bytes in {} us ({:.1} MiB/s)",
        stats.policy,
        stats.waves,
        stats.peak_link_concurrency,
        stats.bytes,
        stats.wall.as_micros(),
        stats.mib_per_sec()
    );
    for ((a, b), bytes) in &stats.bytes_per_link {
        println!("      link {a}-{b}: {bytes} bytes");
    }
}

/// The interval's sender-side message-log footprint, when the job ran
/// with `crcp_msg_log_enabled`: per-rank bytes retained for partial
/// restart (frames a survivor would resend to a rank restored from this
/// interval).  Absent for jobs without the log.
fn print_msg_log(global: &GlobalSnapshot, interval: u64) {
    let per_rank = global.msg_log_bytes(interval);
    if per_rank.is_empty() {
        return;
    }
    let total: u64 = per_rank.iter().map(|(_, b)| b).sum();
    println!("    message log: {total} bytes retained for partial restart");
    for (rank, bytes) in per_rank {
        println!("      rank {}: {bytes} bytes", rank.0);
    }
}

/// The spare-node pool recorded at checkpoint time — the nodes a partial
/// restart may claim to rehost failed ranks.  An empty pool means a live
/// `--ranks` restart of this snapshot would refuse and fall back to a
/// full relaunch.
fn print_spare_pool(global: &GlobalSnapshot) {
    let spares = global.spare_pool();
    if spares.is_empty() {
        println!("  spare pool: empty (partial restart would refuse)");
    } else {
        let list = spares
            .iter()
            .map(|n| format!("node {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  spare pool: {} held out ({list})", spares.len());
    }
}

/// The stable chunk tier: totals plus a refcount histogram (references
/// held by recorded manifests per chunk — count-zero chunks are awaiting
/// the next GC sweep).
fn print_chunk_store(global: &GlobalSnapshot) -> Result<(), String> {
    let store = ChunkStore::open(&global.dir().join(orte::store::CHUNK_STORE_DIR))
        .map_err(|e| e.to_string())?;
    println!(
        "  chunk store: {} chunks, {} bytes",
        store.chunk_count().map_err(|e| e.to_string())?,
        store.total_bytes().map_err(|e| e.to_string())?
    );
    let mut histogram: BTreeMap<u64, usize> = BTreeMap::new();
    for id in store.disk_ids().map_err(|e| e.to_string())? {
        *histogram.entry(store.refcount(&id)).or_default() += 1;
    }
    for (refs, chunks) in histogram {
        println!("    refcount {refs}: {chunks} chunks");
    }
    Ok(())
}
