//! `cr-replay` — verify, replay, and diff hash-chained FT event journals.
//!
//! ```text
//! cr-replay verify <journal>
//! cr-replay replay --model <commit|quiesce|replica|gc|partial> <journal>
//! cr-replay diff [--phases-only] [--context N] <left> <right>
//! cr-replay show [--tail N] <journal>
//! ```
//!
//! * `verify` re-walks the whole chain: framing, CRC, seq continuity,
//!   `prev_hash` links, and entry hashes.  Any truncation or tampering is
//!   reported with the exact broken link.  Exit 1 on a broken journal.
//! * `replay` feeds the journal's phase stream through the cr-model
//!   replay-conformance engine: the recorded order must be reachable in
//!   the named protocol model.  Exit 1 on a model-unreachable sequence
//!   (the report pins the first inexplicable seq).
//! * `diff` aligns two journals and reports the first divergence with
//!   surrounding context.  `--phases-only` compares `(actor, phase)`
//!   and ignores details (which carry run-specific paths and byte
//!   counts).  Exit 1 when the journals diverge.
//! * `show` pretty-prints entries (all, or the last `--tail N`).

use std::path::Path;
use std::process::ExitCode;

use journal::{diff, DiffKey, JournalEntry};
use model::replay::ReplayEvent;
use tools::ArgSpec;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cr-replay: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cr-replay <verify|replay|diff|show> [options] <journal...>\n\
  verify <journal>                      check the hash chain end to end\n\
  replay --model <name> <journal>       check model-reachability (commit|quiesce|replica|gc|partial)\n\
  diff [--phases-only] [--context N] <left> <right>\n\
  show [--tail N] <journal>";

/// Returns `Ok(true)` when the check passed, `Ok(false)` for a verified
/// failure (broken chain, nonconformant run, diverging journals), and
/// `Err` for usage or I/O problems.
fn run(raw: &[String]) -> Result<bool, String> {
    let (cmd, rest) = raw.split_first().ok_or(USAGE)?;
    match cmd.as_str() {
        "verify" => verify(rest),
        "replay" => replay(rest),
        "diff" => diff_cmd(rest),
        "show" => show(rest),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load(path: &str) -> Result<Vec<JournalEntry>, String> {
    journal::read_entries(Path::new(path)).map_err(|e| e.to_string())
}

fn verify(args: &[String]) -> Result<bool, String> {
    let spec = ArgSpec::parse(args, &[])?;
    let path = spec
        .positional()
        .first()
        .ok_or("usage: cr-replay verify <journal>")?;
    let report = journal::verify(Path::new(path)).map_err(|e| e.to_string())?;
    println!("{}", report.render());
    Ok(report.ok())
}

fn replay(args: &[String]) -> Result<bool, String> {
    let spec = ArgSpec::parse(args, &["model"])?;
    let model = spec
        .option("model")
        .ok_or("usage: cr-replay replay --model <name> <journal>")?;
    let path = spec
        .positional()
        .first()
        .ok_or("usage: cr-replay replay --model <name> <journal>")?;
    // A journal that fails verification must not be replayed: conformance
    // of tampered data proves nothing.
    let chain = journal::verify(Path::new(path)).map_err(|e| e.to_string())?;
    if !chain.ok() {
        println!("{}", chain.render());
        return Ok(false);
    }
    let entries = load(path)?;
    let events: Vec<ReplayEvent> = entries
        .iter()
        .map(|e| ReplayEvent { seq: e.seq, phase: e.phase.clone() })
        .collect();
    let report = model::conformance(model, &events).ok_or_else(|| {
        format!("unknown model `{model}` (known: {})", model::MODEL_NAMES.join(", "))
    })?;
    print!("{}", report.render());
    Ok(report.ok())
}

fn diff_cmd(args: &[String]) -> Result<bool, String> {
    let spec = ArgSpec::parse(args, &["context"])?;
    let mut pos = spec.positional().iter();
    let (left_path, right_path) = match (pos.next(), pos.next()) {
        (Some(l), Some(r)) => (l, r),
        _ => return Err("usage: cr-replay diff [--phases-only] [--context N] <left> <right>".into()),
    };
    let context: usize = spec.option_parsed("context", 3)?;
    let key = if spec.flag("phases-only") {
        DiffKey::PhaseOnly
    } else {
        DiffKey::Full
    };
    let left = load(left_path)?;
    let right = load(right_path)?;
    let report = diff(&left, &right, key);
    print!("{}", report.render(&left, context));
    Ok(report.identical())
}

fn show(args: &[String]) -> Result<bool, String> {
    let spec = ArgSpec::parse(args, &["tail"])?;
    let path = spec
        .positional()
        .first()
        .ok_or("usage: cr-replay show [--tail N] <journal>")?;
    let entries = load(path)?;
    let tail: usize = spec.option_parsed("tail", entries.len())?;
    let skip = entries.len().saturating_sub(tail);
    for e in entries.iter().skip(skip) {
        let actor = if e.actor.is_empty() { "-" } else { &e.actor };
        println!(
            "#{:<5} {:<8} {:<32} {}",
            e.seq,
            actor,
            e.phase,
            e.detail.replace('\n', "\\n")
        );
    }
    Ok(true)
}
