//! `ompi-checkpoint` — checkpoint a running simulated job.
//!
//! ```text
//! ompi-checkpoint --np 4 --nodes 2 --app ring [--term] [--base DIR]
//!                 [--settle-ms N] [--mca key value]...
//! ```
//!
//! Launches a long-running job, waits `--settle-ms`, checkpoints it
//! (with `--term`, checkpoint-and-terminate), prints the **global
//! snapshot reference** — the single name the user must preserve
//! (paper §4) — and exits. Restart later with `ompi-restart <reference>`,
//! possibly from a different host process.

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use tools::apps::{launch_named, tool_runtime};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("ompi-checkpoint: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let params = McaParams::new();
    let rest = params.consume_cli_args(&raw).map_err(|e| e.to_string())?;
    let spec = ArgSpec::parse(&rest, &["np", "nodes", "app", "base", "settle-ms"])?;

    let np: u32 = spec.option_parsed("np", 4)?;
    let nodes: u32 = spec.option_parsed("nodes", 2)?;
    let app = spec.option("app").unwrap_or("stencil").to_string();
    let settle: u64 = spec.option_parsed("settle-ms", 100)?;
    let terminate = spec.flag("term");
    let base = spec
        .option("base")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ompi_checkpoint_{}", std::process::id()))
        });

    let rt = tool_runtime(&base, nodes).map_err(|e| e.to_string())?;
    let job = launch_named(&rt, &app, np, Arc::new(params)).map_err(|e| e.to_string())?;
    println!("ompi-checkpoint: job {} ({app}, {np} ranks) running; letting it settle {settle}ms", job.handle().job());
    std::thread::sleep(std::time::Duration::from_millis(settle));

    let options = if terminate {
        CheckpointOptions::tool().and_terminate()
    } else {
        CheckpointOptions::tool()
    };
    let outcome = job.handle().checkpoint(&options).map_err(|e| e.to_string())?;
    println!("Snapshot Ref.: {}", outcome.global_snapshot.display());
    println!("  interval: {}", outcome.interval);
    println!("  ranks:    {}", outcome.ranks);

    if !terminate {
        job.handle().request_terminate();
    }
    job.wait().map_err(|e| e.to_string())?;
    rt.shutdown();
    Ok(())
}
