//! `mpirun-sim` — launch a workload on a simulated cluster.
//!
//! ```text
//! mpirun-sim --np 8 --nodes 4 --app stencil [--base DIR] [--ckpt-every MS]
//!            [--mca key value]...
//! ```
//!
//! With `--ckpt-every`, the job is checkpointed on that wall-clock
//! interval until it finishes; the global snapshot reference is printed
//! after each checkpoint (paper Figure 1-A).

use std::sync::Arc;

use cr_core::request::CheckpointOptions;
use mca::McaParams;
use tools::apps::{launch_named, tool_runtime};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("mpirun-sim: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let params = McaParams::new();
    let rest = params.consume_cli_args(&raw).map_err(|e| e.to_string())?;
    // Diagnose typo'd --mca keys before launch: an unregistered key will
    // never be read by any component, which is almost always a mistake.
    let unknown = mca::registry::unknown_keys(&params);
    if !unknown.is_empty() {
        eprintln!(
            "mpirun-sim: warning: unknown --mca keys (see ompi-info): {}",
            unknown.join(", ")
        );
    }
    let spec = ArgSpec::parse(&rest, &["np", "nodes", "app", "base", "ckpt-every", "rounds"])?;

    let np: u32 = spec.option_parsed("np", 4)?;
    let nodes: u32 = spec.option_parsed("nodes", 2)?;
    let app = spec.option("app").unwrap_or("ring").to_string();
    let ckpt_every: u64 = spec.option_parsed("ckpt-every", 0)?;
    if let Some(rounds) = spec.option("rounds") {
        params.set("tools_rounds", rounds);
    }
    let base = spec
        .option("base")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("mpirun_sim_{}", std::process::id())));

    println!("mpirun-sim: launching {app} with {np} ranks on {nodes} nodes (base {})", base.display());
    let rt = tool_runtime(&base, nodes).map_err(|e| e.to_string())?;
    let job = launch_named(&rt, &app, np, Arc::new(params)).map_err(|e| e.to_string())?;
    let handle = Arc::clone(job.handle());
    println!("mpirun-sim: job {} running", handle.job());

    let ticker = if ckpt_every > 0 {
        let handle = Arc::clone(&handle);
        let done = handle.terminate_flag();
        Some(std::thread::spawn(move || {
            let mut n = 0u32;
            while !done.load(std::sync::atomic::Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(ckpt_every));
                match handle.checkpoint(&CheckpointOptions::tool()) {
                    Ok(outcome) => {
                        n += 1;
                        println!(
                            "mpirun-sim: checkpoint #{n} -> {} (interval {})",
                            outcome.global_snapshot.display(),
                            outcome.interval
                        );
                    }
                    Err(e) => {
                        // Job probably finished; stop checkpointing.
                        eprintln!("mpirun-sim: checkpoint skipped: {e}");
                        return;
                    }
                }
            }
        }))
    } else {
        None
    };

    let results = job.wait().map_err(|e| e.to_string())?;
    handle.request_terminate(); // stop the ticker promptly
    if let Some(t) = ticker {
        let _ = t.join();
    }
    for (rank, (summary, end)) in results.iter().enumerate() {
        println!("mpirun-sim: rank {rank}: {end:?}, {summary}");
    }
    rt.shutdown();
    println!("mpirun-sim: done");
    Ok(())
}
