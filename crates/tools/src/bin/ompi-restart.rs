//! `ompi-restart` — resurrect a job from a global snapshot reference.
//!
//! ```text
//! ompi-restart [--nodes N] [--interval I] [--base DIR] [--source S] \
//!              [--no-verify] <global-snapshot-ref>
//! ```
//!
//! The only required input is the snapshot reference directory: the
//! workload, rank count, and MCA parameters are all read from the
//! snapshot metadata (paper §4 — the user need not remember how the job
//! was originally started). The restarted job runs to completion.
//! `--source` picks where the images come from: `auto` (default;
//! surviving peer-memory replicas first, stable storage fallback),
//! `replica` (peer memory only, fail otherwise), or `stable` (disk only).
//! `--no-verify` skips digest verification of peer-memory chunks on the
//! dedup restart path. Every knob lands in one [`ompi::RestartOptions`].

use tools::apps::{restart_named_with, tool_runtime};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("ompi-restart: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let spec = ArgSpec::parse(&raw, &["nodes", "interval", "base", "source"])?;
    let reference = spec
        .positional()
        .first()
        .ok_or("usage: ompi-restart [--nodes N] [--interval I] [--source auto|replica|stable] <global-snapshot-ref>")?;
    let nodes: u32 = spec.option_parsed("nodes", 2)?;
    let interval: i64 = spec.option_parsed("interval", -1)?;
    let source: ompi::RestartSource = spec
        .option("source")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or_default();
    let base = spec
        .option("base")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ompi_restart_{}", std::process::id()))
        });

    let rt = tool_runtime(&base, nodes).map_err(|e| e.to_string())?;
    println!("ompi-restart: restoring from {reference}");
    let opts = ompi::RestartOptions {
        source,
        interval: if interval < 0 { None } else { Some(interval as u64) },
        verify: !spec.flag("no-verify"),
    };
    let job = restart_named_with(&rt, std::path::Path::new(reference), opts)
        .map_err(|e| e.to_string())?;
    println!("ompi-restart: job {} resumed on {nodes} nodes", job.handle().job());
    let results = job.wait().map_err(|e| e.to_string())?;
    for (rank, (summary, end)) in results.iter().enumerate() {
        println!("ompi-restart: rank {rank}: {end:?}, {summary}");
    }
    rt.shutdown();
    println!("ompi-restart: job completed");
    Ok(())
}
