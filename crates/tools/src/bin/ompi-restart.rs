//! `ompi-restart` — resurrect a job from a global snapshot reference.
//!
//! ```text
//! ompi-restart [--nodes N] [--interval I] [--base DIR] [--source S] \
//!              [--no-verify] <global-snapshot-ref>
//! ```
//!
//! The only required input is the snapshot reference directory: the
//! workload, rank count, and MCA parameters are all read from the
//! snapshot metadata (paper §4 — the user need not remember how the job
//! was originally started). The restarted job runs to completion.
//! `--source` picks where the images come from: `auto` (default;
//! surviving peer-memory replicas first, stable storage fallback),
//! `replica` (peer memory only, fail otherwise), or `stable` (disk only).
//! `--no-verify` skips digest verification of peer-memory chunks on the
//! dedup restart path. Every knob lands in one [`ompi::RestartOptions`].
//!
//! `--ranks R1,R2,...` prints a *partial-restart plan* instead of
//! relaunching: which tier would serve each failed rank's image, the
//! recorded spare-node pool, and the per-rank message-log bytes at the
//! chosen interval. An actual partial restart runs inside a live job
//! (`MpiJob::restart_ranks`, driven by the recovery supervisor) — a tool
//! invoked after the job is gone can only relaunch everything.

use tools::apps::{restart_named_with, tool_runtime};
use tools::ArgSpec;

fn main() {
    if let Err(e) = run() {
        eprintln!("ompi-restart: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let spec = ArgSpec::parse(&raw, &["nodes", "interval", "base", "source", "ranks"])?;
    let reference = spec
        .positional()
        .first()
        .ok_or("usage: ompi-restart [--nodes N] [--interval I] [--source auto|replica|stable] [--ranks R1,R2,...] <global-snapshot-ref>")?;
    let nodes: u32 = spec.option_parsed("nodes", 2)?;
    let interval: i64 = spec.option_parsed("interval", -1)?;
    let source: ompi::RestartSource = spec
        .option("source")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or_default();
    let base = spec
        .option("base")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("ompi_restart_{}", std::process::id()))
        });

    if let Some(list) = spec.option("ranks") {
        let ranks: Vec<u32> = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse::<u32>().map_err(|e| format!("--ranks: {e}")))
            .collect::<Result<_, _>>()?;
        let interval = if interval < 0 { None } else { Some(interval as u64) };
        return partial_plan(std::path::Path::new(reference), &ranks, interval);
    }

    let rt = tool_runtime(&base, nodes).map_err(|e| e.to_string())?;
    println!("ompi-restart: restoring from {reference}");
    let opts = ompi::RestartOptions {
        source,
        interval: if interval < 0 { None } else { Some(interval as u64) },
        verify: !spec.flag("no-verify"),
        ranks: None,
    };
    let job = restart_named_with(&rt, std::path::Path::new(reference), opts)
        .map_err(|e| e.to_string())?;
    println!("ompi-restart: job {} resumed on {nodes} nodes", job.handle().job());
    let results = job.wait().map_err(|e| e.to_string())?;
    for (rank, (summary, end)) in results.iter().enumerate() {
        println!("ompi-restart: rank {rank}: {end:?}, {summary}");
    }
    rt.shutdown();
    println!("ompi-restart: job completed");
    Ok(())
}

/// `--ranks`: print what a partial restart of these ranks would do.
fn partial_plan(
    reference: &std::path::Path,
    ranks: &[u32],
    interval: Option<u64>,
) -> Result<(), String> {
    let global = cr_core::GlobalSnapshot::open(reference).map_err(|e| e.to_string())?;
    let interval = match interval {
        Some(i) => i,
        None => global
            .latest_interval()
            .ok_or("global snapshot has no committed intervals")?,
    };
    if !global.intervals().contains(&interval) {
        return Err(format!("interval {interval} was never committed"));
    }
    let nprocs = global.nprocs();
    println!(
        "ompi-restart: partial-restart plan for ranks {ranks:?} of {nprocs} at interval {interval}"
    );
    for &r in ranks {
        if r >= nprocs {
            return Err(format!("rank {r} out of range for a {nprocs}-rank job"));
        }
        let rank = cr_core::Rank(r);
        if global.chunk_manifest(interval, rank).is_some() {
            println!("  rank {r}: dedup chunk manifest (assembled from chunk tiers)");
            continue;
        }
        let chain = global.ckpt_chain(interval, rank).map_err(|e| e.to_string())?;
        for ci in chain {
            let holders = global.replica_holders(ci, rank);
            if holders.is_empty() {
                println!("  rank {r}: interval {ci} from stable storage (no replica holders)");
            } else {
                println!("  rank {r}: interval {ci} from replica holders {holders:?}");
            }
        }
    }
    let spares = global.spare_pool();
    if spares.is_empty() {
        println!("  spare pool: empty — a live partial restart would refuse");
    } else {
        println!("  spare pool: nodes {spares:?}");
    }
    let msglog = global.msg_log_bytes(interval);
    if msglog.is_empty() {
        println!("  message log: no per-rank bytes recorded at interval {interval}");
    } else {
        for (rank, bytes) in msglog {
            println!("  message log: rank {rank} held {bytes} bytes at commit");
        }
    }
    println!("ompi-restart: plan only — run partial restart from the recovery supervisor");
    Ok(())
}
