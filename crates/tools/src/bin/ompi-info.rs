//! `ompi-info` — list frameworks, components, priorities, and key MCA
//! parameters, like the real tool of the same name.
//!
//! ```text
//! ompi-info [--mca key value]...
//! ```
//!
//! With `--mca` selections supplied, also shows which component each
//! framework would select.

use mca::McaParams;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let params = McaParams::new();
    if let Err(e) = params.consume_cli_args(&raw) {
        eprintln!("ompi-info: {e}");
        std::process::exit(1);
    }

    println!("ompi-cr (simulated Open MPI checkpoint/restart), frameworks and components:\n");

    fn show<C: ?Sized>(fw: &mca::Framework<C>, params: &McaParams) {
        let selected = fw.resolve(params).map(|r| r.name).unwrap_or("<error>");
        println!("Framework: {}", fw.name());
        for reg in fw.registrations() {
            let mark = if reg.name == selected { "*" } else { " " };
            println!(
                "  {mark} {:<12} priority {:>3}  {}",
                reg.name, reg.priority, reg.describe
            );
        }
        println!();
    }

    show(&opal::crs::crs_framework(opal::crs::SelfCallbacks::new()), &params);
    show(&ompi::crcp::crcp_framework(cr_core::Tracer::new()), &params);
    show(&orte::snapc::snapc_framework(), &params);
    show(&orte::filem::filem_framework(), &params);
    show(&orte::plm::plm_framework(), &params);

    println!("Registered MCA parameters:");
    for def in mca::KNOWN_PARAMS {
        let default = def.default.map(|d| format!(" [default: {d:?}]")).unwrap_or_default();
        println!("  {:<28} {}{default}", def.key, def.help);
    }
    let unknown = mca::registry::unknown_keys(&params);
    if !unknown.is_empty() {
        eprintln!("\nompi-info: unknown --mca keys (not registered): {}", unknown.join(", "));
        std::process::exit(1);
    }
}
